// sirius_cli — command-line driver for one-off experiments.
//
//   sirius_cli run   [--system sirius|sirius-ideal|esn|esn-osub]
//                    [--racks N] [--servers-per-rack N] [--uplinks N]
//                    [--load L] [--flows N] [--seed S] [--q N]
//                    [--guardband-ns G] [--multiplier M]
//                    [--trace file.csv] [--fail rack[,rack...]]
//                    [--fault RACK@T_US[+DURATION_US][,...]]
//                    [--grey SRC>DST@LOSS[@FROM_US-UNTIL_US][,...]]
//                    [--metrics-out m.jsonl|m.csv] [--metrics-every-us U]
//                    [--trace-events out.json] [--trace-sample N]
//                    [--trace-max-events N] [--flight-recorder DEPTH]
//                    [--manifest run.json] [--profile]
//                    [--profile-flame flame.json] [--oob-sample-us U]
//                    [--oob-out oob.json]
//                    [--checkpoint-every-us U --checkpoint-out ck-{t}.ckpt]
//                    [--restore snapshot.ckpt]
//
// `--fail` statically removes racks for the whole run (sugar for a fault at
// t = 0). `--fault` and `--grey` build a §4.5 mid-run fault timeline: the
// fabric must detect the fault in-band, reconfigure, and recover lost
// cells; the run then also prints a failover summary (detection and
// dissemination latency, drops, retransmissions, goodput transient).
//
// Telemetry (docs/OBSERVABILITY.md): `--trace` is a workload *input* (a
// flow trace CSV); `--trace-events` is a telemetry *output* (Chrome
// trace-event JSON, loadable in Perfetto). `--metrics-out` streams the
// metric registry on an epoch cadence, `--manifest` writes the
// self-describing run manifest, `--profile` prints a wall-clock table of
// the simulator hot paths with hierarchical self/total attribution.
// `--profile-flame` writes the same attribution tree as flame-graph-style
// JSON; `--oob-sample-us` runs the out-of-band perf sampler (a background
// thread snapshotting per-phase counters every U host-microseconds) with
// `--oob-out` as its `sirius.oob.v1` export. None of these change
// simulation results.
//
// Checkpointing (docs/OPERABILITY.md): `--checkpoint-every-us` +
// `--checkpoint-out` write a crash-safe `sirius.ckpt.v1` snapshot of the
// full simulator state on a cadence (`{t}` in the pattern becomes the
// snapshot time in microseconds); `--restore` resumes a run from one. A
// resumed run is bit-identical to the uninterrupted run — same config,
// workload and fault plan required; only the seed may differ.
//
//   sirius_cli bisect [run-shaping options] [--checkpoint-every-us U]
//
// `bisect` runs the experiment once with in-memory snapshots and, if any
// invariant fires, replays from the nearest clean snapshot at full audit
// granularity to pin the first violating slot (exit 1 with the report;
// exit 0 when the run is clean).
//
//   sirius_cli fork --restore snapshot.ckpt [--forks N] [--salt S]
//                   [run-shaping options]
//
// `fork` runs N what-if continuations of one snapshot, each with freshly
// salted RNG streams (and optionally a different fault timeline), printing
// one metrics row per fork.
//
//   sirius_cli gen   --out file.csv [--racks N] [--servers-per-rack N]
//                    [--load L] [--flows N] [--seed S]
//   sirius_cli info  [--racks N] [--servers-per-rack N] [--uplinks N]
//
// `run` prints one metrics row; `gen` writes a workload trace; `info`
// prints the derived deployment parameters (schedule geometry, epoch,
// laser/link budget).
//
// Unknown options are hard errors (exit 2): a typo like `--flowss` must
// fail loudly, not silently run the default configuration. Unreadable or
// unparsable `--restore` files and output paths whose directory does not
// exist are also exit 2, detected before the simulation starts.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/invariant.hpp"
#include "core/experiment.hpp"
#include "optical/link_budget.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/manifest.hpp"
#include "workload/trace_io.hpp"

using namespace sirius;
using namespace sirius::core;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
};

// Per-command option allowlists. parse() rejects anything not listed for
// the given command, so every accepted spelling appears exactly once here.
const std::vector<const char*>& allowed_options(const std::string& command) {
  static const std::vector<const char*> kRun = {
      "system",       "racks",          "servers-per-rack",
      "uplinks",      "load",           "flows",
      "seed",         "q",              "guardband-ns",
      "multiplier",   "trace",          "fail",
      "fault",        "grey",           "metrics-out",
      "metrics-every-us",               "trace-events",
      "trace-sample", "trace-max-events",
      "flight-recorder",                "manifest",
      "profile",      "profile-flame",
      "oob-sample-us",                  "oob-out",
      "checkpoint-every-us",
      "checkpoint-out",                 "restore"};
  static const std::vector<const char*> kBisect = {
      "racks",      "servers-per-rack",
      "uplinks",    "load",
      "flows",      "seed",
      "q",          "guardband-ns",
      "multiplier", "trace",
      "fail",       "fault",
      "grey",       "checkpoint-every-us"};
  static const std::vector<const char*> kFork = {
      "racks", "servers-per-rack", "uplinks",      "load",
      "flows", "seed",             "q",            "guardband-ns",
      "multiplier",                "trace",        "fail",
      "fault", "grey",             "restore",      "forks",
      "salt"};
  static const std::vector<const char*> kGen = {
      "out", "racks", "servers-per-rack", "uplinks", "load", "flows", "seed"};
  static const std::vector<const char*> kInfo = {
      "racks", "servers-per-rack", "uplinks", "multiplier"};
  static const std::vector<const char*> kNone = {};
  if (command == "run") return kRun;
  if (command == "bisect") return kBisect;
  if (command == "fork") return kFork;
  if (command == "gen") return kGen;
  if (command == "info") return kInfo;
  return kNone;
}

// Parses `<command> [--key [value]]...`, validating every option against
// the command's allowlist. Returns nullopt (after printing the error) on
// an unknown option or a stray positional argument.
std::optional<Args> parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  const std::vector<const char*>& allowed = allowed_options(a.command);
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", key.c_str());
      return std::nullopt;
    }
    key = key.substr(2);
    bool known = false;
    for (const char* name : allowed) known = known || key == name;
    if (!known) {
      std::fprintf(stderr,
                   "error: unknown option --%s for '%s' (see the header of "
                   "tools/sirius_cli.cpp for the option list)\n",
                   key.c_str(), a.command.c_str());
      return std::nullopt;
    }
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    a.options[key] = value;
  }
  return a;
}

std::int64_t opt_int(const Args& a, const std::string& k, std::int64_t d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : std::strtoll(it->second.c_str(), nullptr, 10);
}

double opt_double(const Args& a, const std::string& k, double d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : std::strtod(it->second.c_str(), nullptr);
}

std::string opt_str(const Args& a, const std::string& k,
                    const std::string& d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : it->second;
}

ExperimentConfig experiment_from(const Args& a) {
  ExperimentConfig cfg = ExperimentConfig::from_env();
  cfg.racks = static_cast<std::int32_t>(opt_int(a, "racks", cfg.racks));
  cfg.servers_per_rack = static_cast<std::int32_t>(
      opt_int(a, "servers-per-rack", cfg.servers_per_rack));
  cfg.base_uplinks =
      static_cast<std::int32_t>(opt_int(a, "uplinks", cfg.base_uplinks));
  cfg.flows = opt_int(a, "flows", cfg.flows);
  cfg.seed = static_cast<std::uint64_t>(
      opt_int(a, "seed", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

telemetry::TelemetryConfig telemetry_from(const Args& a) {
  telemetry::TelemetryConfig tc;
  tc.metrics_out = opt_str(a, "metrics-out", "");
  tc.metrics_every =
      Time::from_ns(opt_double(a, "metrics-every-us", 10.0) * 1e3);
  tc.trace_out = opt_str(a, "trace-events", "");
  tc.trace_flow_sample = opt_int(a, "trace-sample", 1);
  tc.trace_max_events = opt_int(a, "trace-max-events", 1'000'000);
  tc.flight_recorder_depth =
      static_cast<std::int32_t>(opt_int(a, "flight-recorder", 0));
  tc.profile = a.options.count("profile") > 0;
  tc.flame_out = opt_str(a, "profile-flame", "");
  tc.oob_sample_us = opt_int(a, "oob-sample-us", 0);
  tc.oob_out = opt_str(a, "oob-out", "");
  return tc;
}

// True when `path` can plausibly be created: its directory part (or the
// cwd) exists. Checked before a run starts, so a typo'd output directory
// is exit 2 upfront rather than a wasted simulation.
bool output_dir_exists(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  std::error_code ec;
  return parent.empty() || std::filesystem::is_directory(parent, ec);
}

// The direct-simulator setup shared by `run` (faulted/checkpointed),
// `bisect` and `fork`: geometry, workload (generated or loaded from a
// trace), and the parsed+validated fault timeline.
struct SimSetup {
  ExperimentConfig cfg;
  double load = 0.5;
  sim::SiriusSimConfig s;
  workload::Workload w;
  bool dynamic = false;      ///< any mid-run fault events
  bool have_faults = false;  ///< any of --fail/--fault/--grey given
};

// Builds the setup, printing the error and setting `*rc` on failure
// (1 for bad values, matching the historical `run` behaviour).
std::optional<SimSetup> build_setup(const Args& a, int* rc) {
  SimSetup out;
  out.cfg = experiment_from(a);
  out.load = opt_double(a, "load", 0.5);

  SiriusVariant v;
  v.ideal = opt_str(a, "system", "sirius") == "sirius-ideal";
  v.queue_limit = static_cast<std::int32_t>(opt_int(a, "q", 4));
  v.guardband = Time::from_ns(opt_double(a, "guardband-ns", 10.0));
  v.uplink_multiplier = opt_double(a, "multiplier", 1.5);
  out.s = make_sirius_config(out.cfg, v);

  const std::string trace = opt_str(a, "trace", "");
  if (!trace.empty()) {
    auto loaded = workload::load_trace_csv(trace, out.cfg.servers(),
                                           out.cfg.server_share());
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: cannot load trace %s\n", trace.c_str());
      *rc = 1;
      return std::nullopt;
    }
    out.w = std::move(*loaded);
    out.w.offered_load = out.load;
  } else {
    out.w = make_workload(out.cfg, out.load);
  }

  const std::string fail = opt_str(a, "fail", "");
  const std::string fault = opt_str(a, "fault", "");
  const std::string grey = opt_str(a, "grey", "");
  out.have_faults = !fail.empty() || !fault.empty() || !grey.empty();
  for (std::size_t pos = 0; pos < fail.size();) {
    const std::size_t comma = fail.find(',', pos);
    out.s.failed_racks.push_back(static_cast<NodeId>(
        std::strtol(fail.substr(pos, comma - pos).c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!fault.empty()) {
    if (const auto err = out.s.faults.parse_fault(fault)) {
      std::fprintf(stderr, "error: --fault: %s\n", err->c_str());
      *rc = 1;
      return std::nullopt;
    }
  }
  if (!grey.empty()) {
    if (const auto err = out.s.faults.parse_grey(grey)) {
      std::fprintf(stderr, "error: --grey: %s\n", err->c_str());
      *rc = 1;
      return std::nullopt;
    }
  }
  // Validate the whole timeline — including the --fail sugar — against
  // the rack count before touching the simulator: out-of-range ids and
  // duplicate failures are user errors, not invariant violations.
  ctrl::FaultPlan all = out.s.faults;
  for (const NodeId fr : out.s.failed_racks) all.fail_rack(fr, Time::zero());
  if (const auto err = all.validate(out.s.racks)) {
    std::fprintf(stderr, "error: fault plan: %s\n", err->c_str());
    *rc = 1;
    return std::nullopt;
  }
  out.dynamic = all.dynamic();
  out.s.record_recovery_curve = out.dynamic;
  return out;
}

// Checkpoint-related `run` options, validated upfront (all failures are
// exit 2 before any simulation work).
struct CkptOpts {
  Time every = Time::zero();    ///< zero = no cadence
  std::string out_pattern;      ///< `{t}` -> snapshot time in us
  std::string restore_path;     ///< empty = fresh start
  std::string restore_payload;  ///< loaded + CRC-validated upfront
  [[nodiscard]] bool active() const {
    return every > Time::zero() || !restore_path.empty();
  }
};

std::optional<CkptOpts> ckpt_opts_from(const Args& a) {
  CkptOpts ck;
  const double every_us = opt_double(a, "checkpoint-every-us", 0.0);
  ck.out_pattern = opt_str(a, "checkpoint-out", "");
  ck.restore_path = opt_str(a, "restore", "");
  if ((every_us > 0.0) != !ck.out_pattern.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-every-us and --checkpoint-out must be "
                 "given together\n");
    return std::nullopt;
  }
  if (every_us < 0.0) {
    std::fprintf(stderr, "error: --checkpoint-every-us must be positive\n");
    return std::nullopt;
  }
  if (every_us > 0.0) ck.every = Time::from_ns(every_us * 1e3);
  if (!ck.out_pattern.empty() && !output_dir_exists(ck.out_pattern)) {
    std::fprintf(stderr,
                 "error: --checkpoint-out directory for '%s' does not exist\n",
                 ck.out_pattern.c_str());
    return std::nullopt;
  }
  if (!ck.restore_path.empty()) {
    ckpt::LoadResult lr = ckpt::load(ck.restore_path);
    if (!lr.ok()) {
      std::fprintf(stderr, "error: --restore %s: %s\n",
                   ck.restore_path.c_str(), lr.message.c_str());
      return std::nullopt;
    }
    ck.restore_payload = std::move(lr.payload);
  }
  return ck;
}

// `ck-{t}.ckpt` at t = 125 us -> `ck-125.ckpt`. Without `{t}` every write
// lands on the same path; the atomic rename makes that a crash-safe
// "latest snapshot" file.
std::string ckpt_path_at(const std::string& pattern, Time at) {
  const long long us =
      static_cast<long long>(at.picoseconds() / 1'000'000);
  const std::size_t brace = pattern.find("{t}");
  if (brace == std::string::npos) return pattern;
  return pattern.substr(0, brace) + std::to_string(us) +
         pattern.substr(brace + 3);
}

// Writes the run manifest: one JSON artifact that makes the run
// reproducible (config, seed, fault plan, build flags) and self-describing
// (final metrics, sibling artifact paths).
bool write_manifest(const std::string& path, const Args& a,
                    const ExperimentConfig& cfg, const std::string& system,
                    double load, const workload::Workload& w,
                    const RunMetrics& m, telemetry::Hub& hub,
                    const std::vector<telemetry::Hub::Artifact>& artifacts) {
  telemetry::Manifest man;

  telemetry::JsonObject& run = man.section("run");
  run.add("command", "run").add("system", system);
  run.add_num("load", load);
  run.add_int("seed", static_cast<std::int64_t>(cfg.seed));

  telemetry::Manifest::add_build_info(man.section("build"));

  telemetry::JsonObject& c = man.section("config");
  c.add_int("racks", cfg.racks)
      .add_int("servers_per_rack", cfg.servers_per_rack)
      .add_int("base_uplinks", cfg.base_uplinks)
      .add_int("flows", cfg.flows)
      .add_num("queue_limit", opt_double(a, "q", 4))
      .add_num("guardband_ns", opt_double(a, "guardband-ns", 10.0))
      .add_num("uplink_multiplier", opt_double(a, "multiplier", 1.5));

  telemetry::JsonObject& wl = man.section("workload");
  wl.add_int("flows", static_cast<std::int64_t>(w.flows.size()))
      .add("total", w.total_bytes().to_string())
      .add_num("offered_load", w.offered_load);
  const std::string trace_in = opt_str(a, "trace", "");
  if (!trace_in.empty()) wl.add("trace_csv", trace_in);

  telemetry::JsonObject& f = man.section("faults");
  f.add("fail", opt_str(a, "fail", ""))
      .add("fault", opt_str(a, "fault", ""))
      .add("grey", opt_str(a, "grey", ""));

  telemetry::JsonObject& res = man.section("results");
  res.add_num("goodput", m.goodput)
      .add_num("short_fct_p99_ms", m.short_fct_p99_ms)
      .add_num("queue_peak_kb", m.queue_peak_kb)
      .add_num("reorder_peak_kb", m.reorder_peak_kb)
      .add_int("incomplete_flows", m.incomplete);

  // Final value of every registered scalar metric, in column order.
  telemetry::JsonObject& fin = man.section("metrics");
  const std::vector<std::string> names = hub.metrics().series_names();
  const std::vector<double> values = hub.metrics().series_values();
  for (std::size_t i = 0; i < names.size() && i < values.size(); ++i) {
    fin.add_num(names[i], values[i]);
  }
  man.section("histograms")
      .add_raw("summary", hub.metrics().histograms_json());

  std::vector<std::string> items;
  for (const telemetry::Hub::Artifact& art : artifacts) {
    telemetry::JsonObject o;
    o.add("kind", art.kind).add("path", art.path).add_bool("ok", art.ok);
    items.push_back(o.str());
  }
  man.section("artifacts").add_raw("written", telemetry::json_array(items));

  return man.write(path);
}

int cmd_run(const Args& a) {
  const ExperimentConfig cfg = experiment_from(a);
  const double load = opt_double(a, "load", 0.5);
  const std::string system = opt_str(a, "system", "sirius");

  const telemetry::TelemetryConfig tc = telemetry_from(a);
  const std::string manifest_opt = opt_str(a, "manifest", "");
  for (const std::string& out : {tc.metrics_out, tc.trace_out, manifest_opt}) {
    if (!out.empty() && !output_dir_exists(out)) {
      std::fprintf(stderr, "error: output directory for '%s' does not exist\n",
                   out.c_str());
      return 2;
    }
  }
  const std::optional<CkptOpts> ck = ckpt_opts_from(a);
  if (!ck.has_value()) return 2;
  telemetry::Hub hub(tc);

  workload::Workload w;
  const std::string trace = opt_str(a, "trace", "");
  if (!trace.empty()) {
    auto loaded =
        workload::load_trace_csv(trace, cfg.servers(), cfg.server_share());
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: cannot load trace %s\n", trace.c_str());
      return 1;
    }
    w = std::move(*loaded);
    w.offered_load = load;
  } else {
    w = make_workload(cfg, load);
  }

  RunMetrics m;  // every branch fills this; the manifest reads it
  // The header prints with the row (not upfront) so argument errors found
  // below never leave a dangling half-table on stdout.
  const auto print_result = [](const RunMetrics& mm) {
    print_metrics_header();
    print_metrics_row(mm);
  };
  int rc = 0;
  if (system == "esn" || system == "esn-osub") {
    if (ck->active()) {
      std::fprintf(stderr,
                   "error: checkpointing requires --system sirius or "
                   "sirius-ideal\n");
      return 2;
    }
    m = run_esn(cfg, system == "esn" ? 1 : 3, w, &hub);
    print_result(m);
  } else if (system == "sirius" || system == "sirius-ideal") {
    const std::string fail = opt_str(a, "fail", "");
    const std::string fault = opt_str(a, "fault", "");
    const std::string grey = opt_str(a, "grey", "");
    if (!fail.empty() || !fault.empty() || !grey.empty() || ck->active()) {
      int setup_rc = 1;
      std::optional<SimSetup> setup = build_setup(a, &setup_rc);
      if (!setup.has_value()) return setup_rc;
      sim::SiriusSimConfig s = setup->s;
      s.telemetry = &hub;
      const bool dynamic = setup->dynamic;
      std::string ckpt_error;
      if (ck->every > Time::zero()) {
        s.checkpoint_every = ck->every;
        s.checkpoint_sink = [&ck, &ckpt_error](std::int64_t /*slot*/, Time at,
                                               const std::string& payload) {
          const std::string path = ckpt_path_at(ck->out_pattern, at);
          std::string err;
          if (ckpt::save(path, payload, &err)) {
            std::printf("wrote checkpoint: %s\n", path.c_str());
          } else if (ckpt_error.empty()) {
            ckpt_error = path + ": " + err;
          }
        };
      }
      sim::SiriusSim sim(s, w);
      if (!ck->restore_path.empty()) {
        std::string err;
        if (!sim.restore_state(ck->restore_payload, &err)) {
          std::fprintf(stderr, "error: --restore %s: %s\n",
                       ck->restore_path.c_str(), err.c_str());
          return 2;
        }
        std::printf("restored checkpoint: %s\n", ck->restore_path.c_str());
      }
      const auto r = sim.run();
      if (!ckpt_error.empty()) {
        std::fprintf(stderr, "error: cannot write checkpoint %s\n",
                     ckpt_error.c_str());
        rc = 2;
      }
      m.system = !setup->have_faults ? "Sirius"
                 : dynamic           ? "Sirius(faulted)"
                                     : "Sirius(failed)";
      m.load = load;
      m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
      m.goodput = r.goodput_normalized;
      m.queue_peak_kb = r.worst_node_queue_peak_kb;
      m.reorder_peak_kb = r.worst_reorder_peak_kb;
      m.incomplete = r.incomplete_flows;
      print_result(m);
      if (setup->have_faults) {
        std::printf("(rejected %lld flows touching failed racks)\n",
                    static_cast<long long>(r.rejected_flows));
      }
      if (dynamic) {
        const auto& fo = r.failover;
        std::printf("failover\n");
        std::printf("  detection            : %lld rounds (%s)\n",
                    static_cast<long long>(fo.detection_rounds),
                    fo.detection_latency.to_string().c_str());
        std::printf("  dissemination        : %lld rounds (%s)\n",
                    static_cast<long long>(fo.dissemination_rounds),
                    fo.dissemination_latency.to_string().c_str());
        std::printf("  schedule swaps       : %lld\n",
                    static_cast<long long>(fo.schedule_swaps));
        std::printf("  cells dropped        : %lld\n",
                    static_cast<long long>(fo.cells_dropped));
        std::printf("  cells retransmitted  : %lld (%lld abandoned, "
                    "%lld duplicates)\n",
                    static_cast<long long>(fo.cells_retransmitted),
                    static_cast<long long>(fo.retx_abandoned),
                    static_cast<long long>(fo.duplicates_discarded));
        std::printf("  flows aborted        : %lld\n",
                    static_cast<long long>(fo.flows_aborted));
        std::printf("  goodput dip          : floor %.2f of baseline %.3f, "
                    "width %s\n",
                    fo.recovery.dip_floor_frac, fo.recovery.baseline,
                    fo.recovery.dip_width.to_string().c_str());
        std::printf("  time to recover      : %s%s\n",
                    fo.recovery.time_to_recover.to_string().c_str(),
                    fo.recovery.recovered ? "" : " (not recovered)");
      }
    } else {
      SiriusVariant v;
      v.ideal = (system == "sirius-ideal");
      v.queue_limit = static_cast<std::int32_t>(opt_int(a, "q", 4));
      v.guardband = Time::from_ns(opt_double(a, "guardband-ns", 10.0));
      v.uplink_multiplier = opt_double(a, "multiplier", 1.5);
      m = run_sirius(cfg, v, w, &hub);
      print_result(m);
    }
  } else {
    std::fprintf(stderr, "error: unknown --system %s\n", system.c_str());
    return 1;
  }

  // Flush telemetry artifacts; any write failure fails the run.
  const std::vector<telemetry::Hub::Artifact> artifacts = hub.finish();
  for (const telemetry::Hub::Artifact& art : artifacts) {
    if (art.ok) {
      std::printf("wrote %s: %s\n", art.kind.c_str(), art.path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s %s\n", art.kind.c_str(),
                   art.path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!manifest_opt.empty()) {
    if (write_manifest(manifest_opt, a, cfg, system, load, w, m, hub,
                       artifacts)) {
      std::printf("wrote manifest: %s\n", manifest_opt.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write manifest %s\n",
                   manifest_opt.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (tc.profile) {
    const std::string table = hub.profiler().table();
    if (!table.empty()) std::printf("%s", table.c_str());
  }
  return rc;
}

// `bisect`: find the first slot where an invariant fires, without paying
// slot-granularity auditing for the whole run. Phase 1 runs the experiment
// with in-memory snapshots on a cadence, collecting (not aborting on)
// violations; phase 2 replays from the newest snapshot taken before the
// first violation, at audit granularity 1 and freezing on the first hit.
int cmd_bisect(const Args& a) {
  int setup_rc = 1;
  const std::optional<SimSetup> setup = build_setup(a, &setup_rc);
  if (!setup.has_value()) return setup_rc;
  const double every_us = opt_double(a, "checkpoint-every-us", 25.0);
  if (every_us <= 0.0) {
    std::fprintf(stderr, "error: --checkpoint-every-us must be positive\n");
    return 2;
  }

  struct Snap {
    std::int64_t slot = 0;
    Time at;
    std::string payload;
    std::int64_t violations_before = 0;  ///< collected before this slot
  };
  std::vector<Snap> snaps;
  std::int64_t scan_slots = 0;
  bool clean = true;
  {
    check::ScopedCollect collect;
    sim::SiriusSimConfig s = setup->s;
    s.checkpoint_every = Time::from_ns(every_us * 1e3);
    s.checkpoint_sink = [&snaps, &collect](std::int64_t slot, Time at,
                                           const std::string& payload) {
      snaps.push_back({slot, at, payload, collect.violations()});
    };
    sim::SiriusSim scan(s, setup->w);
    scan_slots = scan.run().slots_simulated;
    clean = collect.violations() == 0;
  }
  if (clean) {
    std::printf("bisect: no invariant violations in %lld slots\n",
                static_cast<long long>(scan_slots));
    return 0;
  }

  // Newest snapshot from before the first violation; none means the
  // violation predates the first cadence point and the replay starts
  // from slot 0.
  const Snap* base = nullptr;
  for (const Snap& sn : snaps) {
    if (sn.violations_before == 0) base = &sn;
  }

  check::ScopedCollect collect;
  sim::SiriusSimConfig s = setup->s;
  s.audit_period_rounds = 1;
  s.stop_on_violation = true;
  sim::SiriusSim replay(s, setup->w);
  if (base != nullptr) {
    std::string err;
    if (!replay.restore_state(base->payload, &err)) {
      std::fprintf(stderr, "error: internal snapshot rejected: %s\n",
                   err.c_str());
      return 1;
    }
    std::printf("bisect: replaying from the slot-%lld snapshot (t=%s)\n",
                static_cast<long long>(base->slot),
                base->at.to_string().c_str());
  } else {
    std::printf("bisect: violation precedes the first snapshot; replaying "
                "from the start\n");
  }
  const auto r = replay.run();
  if (collect.violations() == 0) {
    // Possible when the scan's violation only manifests at coarser audit
    // cadence (an auditor summing over a window, say) — report honestly.
    std::printf("bisect: violation did not reproduce at slot "
                "granularity; it fired in the scan between cadence "
                "points\n");
    return 1;
  }
  std::printf("bisect: first invariant violation at slot %lld (t=%s)\n",
              static_cast<long long>(r.slots_simulated),
              r.sim_end.to_string().c_str());
  std::printf("%s", check::InvariantContext::instance().report().c_str());
  return 1;
}

// `fork`: N what-if continuations of one snapshot. Each fork restores the
// same state, then reseeds the RNG streams with a distinct salt (and runs
// under this invocation's fault timeline, which may differ from the
// snapshotting run's), so operators can ask "from this exact state, how
// does the tail behave under other futures?"
int cmd_fork(const Args& a) {
  const std::string restore_path = opt_str(a, "restore", "");
  if (restore_path.empty()) {
    std::fprintf(stderr, "error: fork requires --restore snapshot.ckpt\n");
    return 2;
  }
  ckpt::LoadResult lr = ckpt::load(restore_path);
  if (!lr.ok()) {
    std::fprintf(stderr, "error: --restore %s: %s\n", restore_path.c_str(),
                 lr.message.c_str());
    return 2;
  }
  const std::int64_t forks = opt_int(a, "forks", 4);
  if (forks < 1 || forks > 1024) {
    std::fprintf(stderr, "error: --forks must be in [1, 1024]\n");
    return 2;
  }
  int setup_rc = 1;
  const std::optional<SimSetup> setup = build_setup(a, &setup_rc);
  if (!setup.has_value()) return setup_rc;
  const std::uint64_t base_salt =
      static_cast<std::uint64_t>(opt_int(a, "salt", 1));

  print_metrics_header();
  for (std::int64_t k = 0; k < forks; ++k) {
    sim::SiriusSim sim(setup->s, setup->w);
    std::string err;
    if (!sim.restore_state(lr.payload, &err)) {
      std::fprintf(stderr, "error: --restore %s: %s\n", restore_path.c_str(),
                   err.c_str());
      return 2;
    }
    const std::uint64_t salt = base_salt + static_cast<std::uint64_t>(k);
    sim.reseed_streams(salt);
    const auto r = sim.run();
    RunMetrics m;
    m.system = "fork(salt=" + std::to_string(salt) + ")";
    m.load = setup->load;
    m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
    m.goodput = r.goodput_normalized;
    m.queue_peak_kb = r.worst_node_queue_peak_kb;
    m.reorder_peak_kb = r.worst_reorder_peak_kb;
    m.incomplete = r.incomplete_flows;
    print_metrics_row(m);
  }
  return 0;
}

int cmd_gen(const Args& a) {
  const std::string out = opt_str(a, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: gen requires --out file.csv\n");
    return 1;
  }
  const ExperimentConfig cfg = experiment_from(a);
  const auto w = make_workload(cfg, opt_double(a, "load", 0.5));
  if (!workload::save_trace_csv(w, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu flows (%s) to %s\n", w.flows.size(),
              w.total_bytes().to_string().c_str(), out.c_str());
  return 0;
}

int cmd_info(const Args& a) {
  const ExperimentConfig cfg = experiment_from(a);
  SiriusVariant v;
  v.uplink_multiplier = opt_double(a, "multiplier", 1.5);
  const auto s = make_sirius_config(cfg, v);
  const sched::CyclicSchedule sched(s.racks, s.uplinks());

  std::printf("deployment\n");
  std::printf("  racks x servers      : %d x %d (%d servers)\n", cfg.racks,
              cfg.servers_per_rack, cfg.servers());
  std::printf("  uplinks per rack     : %d base, %d with %.1fx headroom\n",
              cfg.base_uplinks, s.uplinks(), v.uplink_multiplier);
  std::printf("  per-server bandwidth : %s\n",
              cfg.server_share().to_string().c_str());
  std::printf("schedule\n");
  std::printf("  slot                 : %s (%lld B cell + %s guard)\n",
              s.slots.slot_duration().to_string().c_str(),
              static_cast<long long>(s.slots.cell_size().in_bytes()),
              s.slots.guardband().to_string().c_str());
  std::printf("  slots per round      : %d (epoch %s)\n",
              sched.slots_per_round(),
              (s.slots.slot_duration() * sched.slots_per_round())
                  .to_string()
                  .c_str());
  optical::LinkBudget lb;
  std::printf("optics\n");
  std::printf("  required launch power: %.1f dBm\n",
              lb.required_launch_power().in_dbm());
  std::printf("  laser chips per rack : %d (16.1 dBm lasers, x%d sharing)\n",
              lb.lasers_needed(s.uplinks(), optical::OpticalPower::dbm(16.1)),
              lb.max_sharing_degree(optical::OpticalPower::dbm(16.1)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> a = parse(argc, argv);
  if (!a.has_value()) return 2;
  if (a->command == "run") return cmd_run(*a);
  if (a->command == "bisect") return cmd_bisect(*a);
  if (a->command == "fork") return cmd_fork(*a);
  if (a->command == "gen") return cmd_gen(*a);
  if (a->command == "info") return cmd_info(*a);
  std::fprintf(stderr,
               "usage: sirius_cli {run|bisect|fork|gen|info} [--options]\n"
               "see the header of tools/sirius_cli.cpp for details\n");
  return a->command.empty() ? 1 : 2;
}
