// sirius_cli — command-line driver for one-off experiments.
//
//   sirius_cli run   [--system sirius|sirius-ideal|esn|esn-osub]
//                    [--racks N] [--servers-per-rack N] [--uplinks N]
//                    [--load L] [--flows N] [--seed S] [--q N]
//                    [--guardband-ns G] [--multiplier M]
//                    [--trace file.csv] [--fail rack[,rack...]]
//                    [--fault RACK@T_US[+DURATION_US][,...]]
//                    [--grey SRC>DST@LOSS[@FROM_US-UNTIL_US][,...]]
//                    [--metrics-out m.jsonl|m.csv] [--metrics-every-us U]
//                    [--trace-events out.json] [--trace-sample N]
//                    [--trace-max-events N] [--flight-recorder DEPTH]
//                    [--manifest run.json] [--profile]
//
// `--fail` statically removes racks for the whole run (sugar for a fault at
// t = 0). `--fault` and `--grey` build a §4.5 mid-run fault timeline: the
// fabric must detect the fault in-band, reconfigure, and recover lost
// cells; the run then also prints a failover summary (detection and
// dissemination latency, drops, retransmissions, goodput transient).
//
// Telemetry (docs/OBSERVABILITY.md): `--trace` is a workload *input* (a
// flow trace CSV); `--trace-events` is a telemetry *output* (Chrome
// trace-event JSON, loadable in Perfetto). `--metrics-out` streams the
// metric registry on an epoch cadence, `--manifest` writes the
// self-describing run manifest, `--profile` prints a wall-clock table of
// the simulator hot paths. None of these change simulation results.
//
//   sirius_cli gen   --out file.csv [--racks N] [--servers-per-rack N]
//                    [--load L] [--flows N] [--seed S]
//   sirius_cli info  [--racks N] [--servers-per-rack N] [--uplinks N]
//
// `run` prints one metrics row; `gen` writes a workload trace; `info`
// prints the derived deployment parameters (schedule geometry, epoch,
// laser/link budget).
//
// Unknown options are hard errors (exit 2): a typo like `--flowss` must
// fail loudly, not silently run the default configuration.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "optical/link_budget.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/manifest.hpp"
#include "workload/trace_io.hpp"

using namespace sirius;
using namespace sirius::core;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
};

// Per-command option allowlists. parse() rejects anything not listed for
// the given command, so every accepted spelling appears exactly once here.
const std::vector<const char*>& allowed_options(const std::string& command) {
  static const std::vector<const char*> kRun = {
      "system",       "racks",          "servers-per-rack",
      "uplinks",      "load",           "flows",
      "seed",         "q",              "guardband-ns",
      "multiplier",   "trace",          "fail",
      "fault",        "grey",           "metrics-out",
      "metrics-every-us",               "trace-events",
      "trace-sample", "trace-max-events",
      "flight-recorder",                "manifest",
      "profile"};
  static const std::vector<const char*> kGen = {
      "out", "racks", "servers-per-rack", "uplinks", "load", "flows", "seed"};
  static const std::vector<const char*> kInfo = {
      "racks", "servers-per-rack", "uplinks", "multiplier"};
  static const std::vector<const char*> kNone = {};
  if (command == "run") return kRun;
  if (command == "gen") return kGen;
  if (command == "info") return kInfo;
  return kNone;
}

// Parses `<command> [--key [value]]...`, validating every option against
// the command's allowlist. Returns nullopt (after printing the error) on
// an unknown option or a stray positional argument.
std::optional<Args> parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  const std::vector<const char*>& allowed = allowed_options(a.command);
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", key.c_str());
      return std::nullopt;
    }
    key = key.substr(2);
    bool known = false;
    for (const char* name : allowed) known = known || key == name;
    if (!known) {
      std::fprintf(stderr,
                   "error: unknown option --%s for '%s' (see the header of "
                   "tools/sirius_cli.cpp for the option list)\n",
                   key.c_str(), a.command.c_str());
      return std::nullopt;
    }
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    a.options[key] = value;
  }
  return a;
}

std::int64_t opt_int(const Args& a, const std::string& k, std::int64_t d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : std::strtoll(it->second.c_str(), nullptr, 10);
}

double opt_double(const Args& a, const std::string& k, double d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : std::strtod(it->second.c_str(), nullptr);
}

std::string opt_str(const Args& a, const std::string& k,
                    const std::string& d) {
  auto it = a.options.find(k);
  return it == a.options.end() ? d : it->second;
}

ExperimentConfig experiment_from(const Args& a) {
  ExperimentConfig cfg = ExperimentConfig::from_env();
  cfg.racks = static_cast<std::int32_t>(opt_int(a, "racks", cfg.racks));
  cfg.servers_per_rack = static_cast<std::int32_t>(
      opt_int(a, "servers-per-rack", cfg.servers_per_rack));
  cfg.base_uplinks =
      static_cast<std::int32_t>(opt_int(a, "uplinks", cfg.base_uplinks));
  cfg.flows = opt_int(a, "flows", cfg.flows);
  cfg.seed = static_cast<std::uint64_t>(
      opt_int(a, "seed", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

telemetry::TelemetryConfig telemetry_from(const Args& a) {
  telemetry::TelemetryConfig tc;
  tc.metrics_out = opt_str(a, "metrics-out", "");
  tc.metrics_every =
      Time::from_ns(opt_double(a, "metrics-every-us", 10.0) * 1e3);
  tc.trace_out = opt_str(a, "trace-events", "");
  tc.trace_flow_sample = opt_int(a, "trace-sample", 1);
  tc.trace_max_events = opt_int(a, "trace-max-events", 1'000'000);
  tc.flight_recorder_depth =
      static_cast<std::int32_t>(opt_int(a, "flight-recorder", 0));
  tc.profile = a.options.count("profile") > 0;
  return tc;
}

// Writes the run manifest: one JSON artifact that makes the run
// reproducible (config, seed, fault plan, build flags) and self-describing
// (final metrics, sibling artifact paths).
bool write_manifest(const std::string& path, const Args& a,
                    const ExperimentConfig& cfg, const std::string& system,
                    double load, const workload::Workload& w,
                    const RunMetrics& m, telemetry::Hub& hub,
                    const std::vector<telemetry::Hub::Artifact>& artifacts) {
  telemetry::Manifest man;

  telemetry::JsonObject& run = man.section("run");
  run.add("command", "run").add("system", system);
  run.add_num("load", load);
  run.add_int("seed", static_cast<std::int64_t>(cfg.seed));

  telemetry::Manifest::add_build_info(man.section("build"));

  telemetry::JsonObject& c = man.section("config");
  c.add_int("racks", cfg.racks)
      .add_int("servers_per_rack", cfg.servers_per_rack)
      .add_int("base_uplinks", cfg.base_uplinks)
      .add_int("flows", cfg.flows)
      .add_num("queue_limit", opt_double(a, "q", 4))
      .add_num("guardband_ns", opt_double(a, "guardband-ns", 10.0))
      .add_num("uplink_multiplier", opt_double(a, "multiplier", 1.5));

  telemetry::JsonObject& wl = man.section("workload");
  wl.add_int("flows", static_cast<std::int64_t>(w.flows.size()))
      .add("total", w.total_bytes().to_string())
      .add_num("offered_load", w.offered_load);
  const std::string trace_in = opt_str(a, "trace", "");
  if (!trace_in.empty()) wl.add("trace_csv", trace_in);

  telemetry::JsonObject& f = man.section("faults");
  f.add("fail", opt_str(a, "fail", ""))
      .add("fault", opt_str(a, "fault", ""))
      .add("grey", opt_str(a, "grey", ""));

  telemetry::JsonObject& res = man.section("results");
  res.add_num("goodput", m.goodput)
      .add_num("short_fct_p99_ms", m.short_fct_p99_ms)
      .add_num("queue_peak_kb", m.queue_peak_kb)
      .add_num("reorder_peak_kb", m.reorder_peak_kb)
      .add_int("incomplete_flows", m.incomplete);

  // Final value of every registered scalar metric, in column order.
  telemetry::JsonObject& fin = man.section("metrics");
  const std::vector<std::string> names = hub.metrics().series_names();
  const std::vector<double> values = hub.metrics().series_values();
  for (std::size_t i = 0; i < names.size() && i < values.size(); ++i) {
    fin.add_num(names[i], values[i]);
  }
  man.section("histograms")
      .add_raw("summary", hub.metrics().histograms_json());

  std::vector<std::string> items;
  for (const telemetry::Hub::Artifact& art : artifacts) {
    telemetry::JsonObject o;
    o.add("kind", art.kind).add("path", art.path).add_bool("ok", art.ok);
    items.push_back(o.str());
  }
  man.section("artifacts").add_raw("written", telemetry::json_array(items));

  return man.write(path);
}

int cmd_run(const Args& a) {
  const ExperimentConfig cfg = experiment_from(a);
  const double load = opt_double(a, "load", 0.5);
  const std::string system = opt_str(a, "system", "sirius");

  const telemetry::TelemetryConfig tc = telemetry_from(a);
  telemetry::Hub hub(tc);

  workload::Workload w;
  const std::string trace = opt_str(a, "trace", "");
  if (!trace.empty()) {
    auto loaded =
        workload::load_trace_csv(trace, cfg.servers(), cfg.server_share());
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: cannot load trace %s\n", trace.c_str());
      return 1;
    }
    w = std::move(*loaded);
    w.offered_load = load;
  } else {
    w = make_workload(cfg, load);
  }

  RunMetrics m;  // every branch fills this; the manifest reads it
  // The header prints with the row (not upfront) so argument errors found
  // below never leave a dangling half-table on stdout.
  const auto print_result = [](const RunMetrics& mm) {
    print_metrics_header();
    print_metrics_row(mm);
  };
  if (system == "esn") {
    m = run_esn(cfg, 1, w, &hub);
    print_result(m);
  } else if (system == "esn-osub") {
    m = run_esn(cfg, 3, w, &hub);
    print_result(m);
  } else if (system == "sirius" || system == "sirius-ideal") {
    SiriusVariant v;
    v.ideal = (system == "sirius-ideal");
    v.queue_limit = static_cast<std::int32_t>(opt_int(a, "q", 4));
    v.guardband = Time::from_ns(opt_double(a, "guardband-ns", 10.0));
    v.uplink_multiplier = opt_double(a, "multiplier", 1.5);

    const std::string fail = opt_str(a, "fail", "");
    const std::string fault = opt_str(a, "fault", "");
    const std::string grey = opt_str(a, "grey", "");
    if (!fail.empty() || !fault.empty() || !grey.empty()) {
      sim::SiriusSimConfig s = make_sirius_config(cfg, v);
      s.telemetry = &hub;
      for (std::size_t pos = 0; pos < fail.size();) {
        const std::size_t comma = fail.find(',', pos);
        s.failed_racks.push_back(static_cast<NodeId>(
            std::strtol(fail.substr(pos, comma - pos).c_str(), nullptr, 10)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (!fault.empty()) {
        if (const auto err = s.faults.parse_fault(fault)) {
          std::fprintf(stderr, "error: --fault: %s\n", err->c_str());
          return 1;
        }
      }
      if (!grey.empty()) {
        if (const auto err = s.faults.parse_grey(grey)) {
          std::fprintf(stderr, "error: --grey: %s\n", err->c_str());
          return 1;
        }
      }
      // Validate the whole timeline — including the --fail sugar — against
      // the rack count before touching the simulator: out-of-range ids and
      // duplicate failures are user errors, not invariant violations.
      {
        ctrl::FaultPlan all = s.faults;
        for (const NodeId fr : s.failed_racks) all.fail_rack(fr, Time::zero());
        if (const auto err = all.validate(s.racks)) {
          std::fprintf(stderr, "error: fault plan: %s\n", err->c_str());
          return 1;
        }
      }
      const bool dynamic = [&] {
        ctrl::FaultPlan all = s.faults;
        for (const NodeId fr : s.failed_racks) all.fail_rack(fr, Time::zero());
        return all.dynamic();
      }();
      s.record_recovery_curve = dynamic;
      sim::SiriusSim sim(s, w);
      const auto r = sim.run();
      m.system = dynamic ? "Sirius(faulted)" : "Sirius(failed)";
      m.load = load;
      m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
      m.goodput = r.goodput_normalized;
      m.queue_peak_kb = r.worst_node_queue_peak_kb;
      m.reorder_peak_kb = r.worst_reorder_peak_kb;
      m.incomplete = r.incomplete_flows;
      print_result(m);
      std::printf("(rejected %lld flows touching failed racks)\n",
                  static_cast<long long>(r.rejected_flows));
      if (dynamic) {
        const auto& fo = r.failover;
        std::printf("failover\n");
        std::printf("  detection            : %lld rounds (%s)\n",
                    static_cast<long long>(fo.detection_rounds),
                    fo.detection_latency.to_string().c_str());
        std::printf("  dissemination        : %lld rounds (%s)\n",
                    static_cast<long long>(fo.dissemination_rounds),
                    fo.dissemination_latency.to_string().c_str());
        std::printf("  schedule swaps       : %lld\n",
                    static_cast<long long>(fo.schedule_swaps));
        std::printf("  cells dropped        : %lld\n",
                    static_cast<long long>(fo.cells_dropped));
        std::printf("  cells retransmitted  : %lld (%lld abandoned, "
                    "%lld duplicates)\n",
                    static_cast<long long>(fo.cells_retransmitted),
                    static_cast<long long>(fo.retx_abandoned),
                    static_cast<long long>(fo.duplicates_discarded));
        std::printf("  flows aborted        : %lld\n",
                    static_cast<long long>(fo.flows_aborted));
        std::printf("  goodput dip          : floor %.2f of baseline %.3f, "
                    "width %s\n",
                    fo.recovery.dip_floor_frac, fo.recovery.baseline,
                    fo.recovery.dip_width.to_string().c_str());
        std::printf("  time to recover      : %s%s\n",
                    fo.recovery.time_to_recover.to_string().c_str(),
                    fo.recovery.recovered ? "" : " (not recovered)");
      }
    } else {
      m = run_sirius(cfg, v, w, &hub);
      print_result(m);
    }
  } else {
    std::fprintf(stderr, "error: unknown --system %s\n", system.c_str());
    return 1;
  }

  // Flush telemetry artifacts; any write failure fails the run.
  int rc = 0;
  const std::vector<telemetry::Hub::Artifact> artifacts = hub.finish();
  for (const telemetry::Hub::Artifact& art : artifacts) {
    if (art.ok) {
      std::printf("wrote %s: %s\n", art.kind.c_str(), art.path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s %s\n", art.kind.c_str(),
                   art.path.c_str());
      rc = 1;
    }
  }
  const std::string manifest_path = opt_str(a, "manifest", "");
  if (!manifest_path.empty()) {
    if (write_manifest(manifest_path, a, cfg, system, load, w, m, hub,
                       artifacts)) {
      std::printf("wrote manifest: %s\n", manifest_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write manifest %s\n",
                   manifest_path.c_str());
      rc = 1;
    }
  }
  if (tc.profile) {
    const std::string table = hub.profiler().table();
    if (!table.empty()) std::printf("%s", table.c_str());
  }
  return rc;
}

int cmd_gen(const Args& a) {
  const std::string out = opt_str(a, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: gen requires --out file.csv\n");
    return 1;
  }
  const ExperimentConfig cfg = experiment_from(a);
  const auto w = make_workload(cfg, opt_double(a, "load", 0.5));
  if (!workload::save_trace_csv(w, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu flows (%s) to %s\n", w.flows.size(),
              w.total_bytes().to_string().c_str(), out.c_str());
  return 0;
}

int cmd_info(const Args& a) {
  const ExperimentConfig cfg = experiment_from(a);
  SiriusVariant v;
  v.uplink_multiplier = opt_double(a, "multiplier", 1.5);
  const auto s = make_sirius_config(cfg, v);
  const sched::CyclicSchedule sched(s.racks, s.uplinks());

  std::printf("deployment\n");
  std::printf("  racks x servers      : %d x %d (%d servers)\n", cfg.racks,
              cfg.servers_per_rack, cfg.servers());
  std::printf("  uplinks per rack     : %d base, %d with %.1fx headroom\n",
              cfg.base_uplinks, s.uplinks(), v.uplink_multiplier);
  std::printf("  per-server bandwidth : %s\n",
              cfg.server_share().to_string().c_str());
  std::printf("schedule\n");
  std::printf("  slot                 : %s (%lld B cell + %s guard)\n",
              s.slots.slot_duration().to_string().c_str(),
              static_cast<long long>(s.slots.cell_size().in_bytes()),
              s.slots.guardband().to_string().c_str());
  std::printf("  slots per round      : %d (epoch %s)\n",
              sched.slots_per_round(),
              (s.slots.slot_duration() * sched.slots_per_round())
                  .to_string()
                  .c_str());
  optical::LinkBudget lb;
  std::printf("optics\n");
  std::printf("  required launch power: %.1f dBm\n",
              lb.required_launch_power().in_dbm());
  std::printf("  laser chips per rack : %d (16.1 dBm lasers, x%d sharing)\n",
              lb.lasers_needed(s.uplinks(), optical::OpticalPower::dbm(16.1)),
              lb.max_sharing_degree(optical::OpticalPower::dbm(16.1)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> a = parse(argc, argv);
  if (!a.has_value()) return 2;
  if (a->command == "run") return cmd_run(*a);
  if (a->command == "gen") return cmd_gen(*a);
  if (a->command == "info") return cmd_info(*a);
  std::fprintf(stderr,
               "usage: sirius_cli {run|gen|info} [--options]\n"
               "see the header of tools/sirius_cli.cpp for details\n");
  return a->command.empty() ? 1 : 2;
}
