// CLI driver for sirius-lint. See linter.hpp for the line rules, index.hpp
// for the two-pass shard-safety analysis, and docs/STATIC_ANALYSIS.md for
// the full rule table and rationale.
//
// Usage:
//   sirius_lint [options] <file-or-dir>...
//
// Directories are walked recursively for C++ sources (.hpp/.h/.hh and
// .cpp/.cc/.cxx); files given explicitly are always scanned, whatever their
// extension (that is how the fixture tests feed it .cpp.in files).
//
// Every scanned file goes through both passes: pass 1 runs the line rules
// and extracts the file's symbol index; pass 2 evaluates the cross-file
// shard-safety rules over the merged index of everything scanned.
//
// Options:
//   --json <path>       also write a machine-readable JSON report (includes
//                       a per-rule violation-count block)
//   --treat-as-src      classify every explicit file as src/ library code
//   --as-header         classify every explicit file as a header
//   --classify-as <p>   classify the next explicit file as if it lived at
//                       path <p>; repeatable — the i-th occurrence applies
//                       to the i-th explicit file, and the last one sticks
//                       for any remaining files (fixtures use this to test
//                       path-scoped rules like no-unordered-sim-state)
//   --allowlist <path>  cross-check every `sirius-lint: allow(...)` site
//                       against this ALLOWLIST.md (rule allowlist-sync)
//   --dead-symbols      also run the dead-public-symbol report (off by
//                       default: it is a review aid, not a gate)
//   --list-rules        print the rule table and exit
//   --quiet             suppress per-violation lines (summary only)
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "index.hpp"
#include "linter.hpp"

namespace fs = std::filesystem;
using sirius::lint::FileKind;
using sirius::lint::Violation;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".hh" || e == ".cpp" ||
         e == ".cc" || e == ".cxx";
}

struct WorkItem {
  fs::path path;
  std::string effective;  // classification path (== path unless overridden)
  FileKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string allowlist_path;
  std::vector<std::string> classify_as;  // positional, per explicit file
  bool treat_as_src = false;
  bool as_header = false;
  bool quiet = false;
  sirius::lint::EvalOptions eval_opts;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) {
        std::cerr << "sirius_lint: --json needs a path\n";
        return 2;
      }
      json_path = argv[i];
    } else if (arg == "--classify-as") {
      if (++i >= argc) {
        std::cerr << "sirius_lint: --classify-as needs a path\n";
        return 2;
      }
      classify_as.emplace_back(argv[i]);
    } else if (arg == "--allowlist") {
      if (++i >= argc) {
        std::cerr << "sirius_lint: --allowlist needs a path\n";
        return 2;
      }
      allowlist_path = argv[i];
    } else if (arg == "--treat-as-src") {
      treat_as_src = true;
    } else if (arg == "--as-header") {
      as_header = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--dead-symbols") {
      eval_opts.dead_symbols = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : sirius::lint::rules()) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sirius_lint [--json <path>] [--treat-as-src] "
                   "[--as-header] [--classify-as <path>]... "
                   "[--allowlist <path>] [--dead-symbols] [--quiet] "
                   "[--list-rules] <path>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sirius_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "sirius_lint: no paths given (try --help)\n";
    return 2;
  }
  if (!allowlist_path.empty() && !fs::exists(allowlist_path)) {
    std::cerr << "sirius_lint: no such allowlist: " << allowlist_path << "\n";
    return 2;
  }

  // Collect work items. Explicit files honour the override flags; walked
  // files are classified purely by path.
  std::vector<WorkItem> files;
  std::size_t explicit_seen = 0;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && has_cxx_extension(it->path())) {
          files.push_back(WorkItem{it->path(), it->path().string(),
                                   sirius::lint::classify(it->path())});
        }
      }
      if (ec) {
        std::cerr << "sirius_lint: error walking " << root << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else if (fs::exists(root, ec)) {
      std::string effective = root.string();
      if (!classify_as.empty()) {
        effective = explicit_seen < classify_as.size()
                        ? classify_as[explicit_seen]
                        : classify_as.back();
      }
      ++explicit_seen;
      FileKind kind = sirius::lint::classify(fs::path(effective));
      if (treat_as_src) kind.is_src = true;
      if (as_header) kind.is_header = true;
      files.push_back(WorkItem{root, effective, kind});
    } else {
      std::cerr << "sirius_lint: no such path: " << root << "\n";
      return 2;
    }
  }

  // Stable order, so reports (and the sim-reachability closure's tie-breaks)
  // never depend on directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const WorkItem& a, const WorkItem& b) {
              return a.path.string() < b.path.string();
            });

  // Pass 1: per-file line rules + symbol extraction.
  std::vector<Violation> all;
  std::vector<sirius::lint::FileIndex> index;
  bool io_error = false;
  for (const WorkItem& item : files) {
    std::ifstream in(item.path, std::ios::binary);
    if (!in) {
      std::cerr << "sirius_lint: cannot read " << item.path << "\n";
      io_error = true;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    auto vs = sirius::lint::lint_text(text, item.path.string(), item.kind);
    all.insert(all.end(), vs.begin(), vs.end());
    index.push_back(sirius::lint::index_text(text, item.path.string(),
                                             item.effective, item.kind));
  }

  // Pass 2: cross-file shard-safety rules over the merged index.
  auto vs = sirius::lint::evaluate_tree(index, allowlist_path, eval_opts);
  all.insert(all.end(), vs.begin(), vs.end());

  std::sort(all.begin(), all.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });

  if (!quiet) {
    for (const Violation& v : all) {
      std::cout << v.file << ":" << v.line << ": error: [" << v.rule << "] "
                << v.message << "\n";
    }
  }
  std::cout << "sirius_lint: " << files.size() << " files, " << all.size()
            << " violation" << (all.size() == 1 ? "" : "s") << "\n";
  if (!all.empty()) {
    std::map<std::string, int> by_rule;
    for (const Violation& v : all) ++by_rule[v.rule];
    for (const auto& [rule, count] : by_rule) {
      std::cout << "  " << rule << ": " << count << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "sirius_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << sirius::lint::to_json(all, static_cast<int>(files.size()));
  }
  if (io_error) return 2;
  return all.empty() ? 0 : 1;
}
