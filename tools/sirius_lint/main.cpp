// CLI driver for sirius-lint. See linter.hpp for the rule set and
// docs/ARCHITECTURE.md ("Static analysis & determinism contract") for the
// rationale behind each rule.
//
// Usage:
//   sirius_lint [options] <file-or-dir>...
//
// Directories are walked recursively for C++ sources (.hpp/.h/.hh and
// .cpp/.cc/.cxx); files given explicitly are always scanned, whatever their
// extension (that is how the fixture tests feed it .cpp.in files).
//
// Options:
//   --json <path>       also write a machine-readable JSON report
//   --treat-as-src      classify every explicit file as src/ library code
//   --as-header         classify every explicit file as a header
//   --classify-as <p>   classify every explicit file as if it lived at
//                       path <p> (fixtures use this to test path-scoped
//                       carve-outs like src/telemetry/profile.*)
//   --list-rules        print the rule table and exit
//   --quiet             suppress per-violation lines (summary only)
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "linter.hpp"

namespace fs = std::filesystem;
using sirius::lint::FileKind;
using sirius::lint::Violation;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".hh" || e == ".cpp" ||
         e == ".cc" || e == ".cxx";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string classify_as;
  bool treat_as_src = false;
  bool as_header = false;
  bool quiet = false;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) {
        std::cerr << "sirius_lint: --json needs a path\n";
        return 2;
      }
      json_path = argv[i];
    } else if (arg == "--classify-as") {
      if (++i >= argc) {
        std::cerr << "sirius_lint: --classify-as needs a path\n";
        return 2;
      }
      classify_as = argv[i];
    } else if (arg == "--treat-as-src") {
      treat_as_src = true;
    } else if (arg == "--as-header") {
      as_header = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : sirius::lint::rules()) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sirius_lint [--json <path>] [--treat-as-src] "
                   "[--as-header] [--classify-as <path>] [--quiet] "
                   "[--list-rules] <path>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sirius_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "sirius_lint: no paths given (try --help)\n";
    return 2;
  }

  // Collect (path, kind) work items. Explicit files honour the override
  // flags; walked files are classified purely by path.
  std::vector<std::pair<fs::path, FileKind>> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && has_cxx_extension(it->path())) {
          files.emplace_back(it->path(), sirius::lint::classify(it->path()));
        }
      }
      if (ec) {
        std::cerr << "sirius_lint: error walking " << root << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else if (fs::exists(root, ec)) {
      FileKind kind = classify_as.empty()
                          ? sirius::lint::classify(root)
                          : sirius::lint::classify(fs::path(classify_as));
      if (treat_as_src) kind.is_src = true;
      if (as_header) kind.is_header = true;
      files.emplace_back(root, kind);
    } else {
      std::cerr << "sirius_lint: no such path: " << root << "\n";
      return 2;
    }
  }

  std::vector<Violation> all;
  for (const auto& [path, kind] : files) {
    auto vs = sirius::lint::lint_file(path, kind);
    all.insert(all.end(), vs.begin(), vs.end());
  }

  if (!quiet) {
    for (const Violation& v : all) {
      std::cout << v.file << ":" << v.line << ": error: [" << v.rule << "] "
                << v.message << "\n";
    }
  }
  std::cout << "sirius_lint: " << files.size() << " files, " << all.size()
            << " violation" << (all.size() == 1 ? "" : "s") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "sirius_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << sirius::lint::to_json(all, static_cast<int>(files.size()));
  }
  return all.empty() ? 0 : 1;
}
