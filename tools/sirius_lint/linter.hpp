// sirius-lint: a domain linter for the Sirius simulator tree.
//
// The simulator's figures are only trustworthy while three contracts hold
// everywhere in src/ (docs/ARCHITECTURE.md, "Static analysis & determinism
// contract"):
//
//   * determinism — all randomness flows through common/rng and all time
//     through the simulated clock; a stray rand() or wall-clock read makes
//     runs irreproducible,
//   * unit safety — Time/DataSize/DataRate stay strongly typed across
//     module boundaries; raw picosecond/byte integers escape only inside
//     src/common and src/check (the unit-defining zone) or behind an
//     explicit suppression,
//   * library hygiene — library code never writes to stdout, every header
//     is self-guarded with #pragma once and never opens a namespace.
//
// This linter enforces those contracts at the token/line level: it scrubs
// comments and string/char literals from each file (so a banned identifier
// in a doc comment or a log message never trips a rule), then runs regex
// rules over the scrubbed "code view". It deliberately has no libclang
// dependency so it builds everywhere the simulator builds and runs in
// milliseconds as a ctest.
//
// Suppression: append `// sirius-lint: allow(<rule>)` (comma-separated list
// or `all`) to the offending line, or place it alone on the line above.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace sirius::lint {

/// One rule violation at a specific source location.
struct Violation {
  std::string file;   ///< path as reported (relative to the scan root)
  int line = 0;       ///< 1-based
  std::string rule;   ///< rule id, e.g. "no-rand"
  std::string message;
};

/// How a file participates in rule selection.
struct FileKind {
  bool is_header = false;   ///< .hpp/.h/.hh: header-only rules apply
  bool is_src = false;      ///< library code: determinism + stdio rules apply
  bool unit_exempt = false; ///< src/common, src/check: may touch raw units
  /// src/telemetry/profile.* and perf_sampler.* — the wall-clock
  /// profiler and the out-of-band sampler. `no-wallclock` still applies
  /// but permits `steady_clock::now()` — and only that — so the
  /// monotonic profiling clock and the sampler cadence can live there
  /// while calendar-time reads (time(nullptr), gettimeofday,
  /// system_clock::now) stay banned.
  bool wallclock_exempt = false;
};

/// Static description of one lint rule (for --list-rules and the docs).
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rules the linter knows, in reporting order.
const std::vector<RuleInfo>& rules();

/// Classifies `path` the way the CLI does: a file is library code when a
/// `src` component appears in its path, unit-exempt when that `src` is
/// directly followed by `common` or `check`, and wallclock-exempt when it
/// is `profile.*` inside a `telemetry` directory under that `src`.
FileKind classify(const std::filesystem::path& path);

/// The comment/string scrub pass, exposed for tests: returns `text` with
/// every comment and string/char-literal body replaced by spaces (newlines
/// kept, so line/column positions survive), and appends the comment text of
/// line i (0-based) to (*comments)[i] when `comments` is non-null.
std::string scrub(const std::string& text,
                  std::vector<std::string>* comments = nullptr);

/// Lints one file's contents. `reported_path` is what appears in
/// violations; `kind` selects the applicable rules.
std::vector<Violation> lint_text(const std::string& text,
                                 const std::string& reported_path,
                                 const FileKind& kind);

/// Reads and lints one file on disk (classification from `classify` unless
/// overridden by the caller).
std::vector<Violation> lint_file(const std::filesystem::path& path,
                                 const FileKind& kind);

/// Serialises violations as a machine-readable JSON report. The report
/// carries a `rule_counts` block: every known rule id mapped to its
/// violation count (zero included), so CI logs show which rule regressed
/// at a glance.
std::string to_json(const std::vector<Violation>& vs, int files_scanned);

// ---- shared with the pass-1 indexer (index.cpp) ----------------------------
// Not part of the public API; exposed so the structural scanner applies the
// exact same suppression semantics as the line rules.

/// Splits on '\n' (the final fragment is kept even when unterminated).
std::vector<std::string> split_lines(const std::string& text);

/// Right-trims spaces/tabs/CR.
std::string rtrim(const std::string& s);

/// True when `comment` carries `sirius-lint: allow(...)` naming `rule` (or
/// `all`). The list is comma-separated; whitespace is ignored.
bool comment_allows(const std::string& comment, const std::string& rule);

/// True when the violation on 0-based line `line_idx` is suppressed by an
/// allow comment on the same line or the line above.
bool suppressed(const std::vector<std::string>& comments, int line_idx,
                const std::string& rule);

}  // namespace sirius::lint
