#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>

namespace sirius::lint {
namespace {

// ---- rule table ------------------------------------------------------------

// A rule is a regex over the scrubbed code view plus a scope predicate over
// FileKind. Regexes are compiled once (static locals) — the tree has a few
// hundred small files, so std::regex is comfortably fast here.
struct Rule {
  const char* id;
  const char* summary;
  const char* pattern;
  bool (*applies)(const FileKind&);
  const char* message;
};

bool in_src(const FileKind& k) { return k.is_src; }
bool in_header(const FileKind& k) { return k.is_header; }
bool in_unit_guarded_header(const FileKind& k) {
  return k.is_header && k.is_src && !k.unit_exempt;
}

// Shared by the rule table and the wallclock-exempt carve-out below, which
// needs to examine individual matches rather than a per-line boolean.
constexpr const char* kWallclockPattern =
    R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\)|\b(gettimeofday|clock_gettime|localtime|gmtime)\s*\(|::\s*now\s*\(\s*\))";

// `\bprintf` cannot match inside snprintf/fprintf (no word boundary between
// two word characters), so the checked formatters stay usable in src/.
constexpr Rule kRules[] = {
    {"no-rand",
     "unseeded/global randomness is banned in src/; use common/rng",
     R"(\b(rand|srand|rand_r|drand48|lrand48|mrand48)\s*\(|\brandom_device\b)",
     &in_src,
     "global RNG primitive in library code: route randomness through "
     "sirius::Rng so runs stay reproducible"},
    {"no-wallclock",
     "wall-clock reads are banned in src/; use simulated time "
     "(src/telemetry/profile.* and perf_sampler.* may read steady_clock)",
     kWallclockPattern,
     &in_src,
     "wall-clock read in library code: simulator behaviour must depend only "
     "on simulated Time"},
    {"no-stdio",
     "stdout writes are banned in src/ library code",
     R"(\bstd\s*::\s*cout\b|\bprintf\s*\(|\bfprintf\s*\(\s*stdout\b|\bputs\s*\(|\bputchar\s*\()",
     &in_src,
     "stdout write in library code: return data or use the caller's sink "
     "(fprintf(stderr, ...) is allowed for diagnostics)"},
    {"no-using-namespace",
     "`using namespace` is banned at header scope",
     R"(\busing\s+namespace\b)",
     &in_header,
     "`using namespace` in a header leaks into every includer"},
    {"unit-escape",
     "raw-unit accessors (.picoseconds()/.in_bytes()/...) are banned in "
     "headers outside src/common and src/check",
     R"(\.\s*(picoseconds|to_ns|to_us|to_ms|to_sec|in_bytes|in_bits|in_kb|bits_per_sec|in_gbps|in_tbps)\s*\(\s*\))",
     &in_unit_guarded_header,
     "raw-unit escape in a public header: keep Time/DataSize/DataRate "
     "strongly typed across module boundaries (or move the arithmetic into "
     "a .cpp)"},
    // raw-unit-param is handled separately (it needs the previous line to
    // detect parameters continued across a line break); the entry here only
    // feeds --list-rules and the scope predicate.
    {"raw-unit-param",
     "raw double/int64 time/size/rate parameters are banned in headers "
     "outside src/common and src/check",
     nullptr,
     &in_unit_guarded_header,
     "raw-unit parameter in a public header: take Time/DataSize/DataRate "
     "instead of a suffixed scalar"},
    {"pragma-once",
     "every header must contain #pragma once",
     nullptr,
     &in_header,
     "header has no #pragma once"},
};

// Unit-suffixed scalar parameter: `double foo_ps`, `std::int64_t bar_bytes`.
// Matched when introduced by `(` or `,` on the same line, or at the start of
// a line whose previous code line ended the same way (wrapped param lists).
constexpr const char* kUnitParamTypes =
    R"((?:const\s+)?(?:double|float|std::int64_t|int64_t|std::uint64_t|uint64_t|long\s+long))";
constexpr const char* kUnitParamSuffix =
    R"(\s+\w+_(ps|ns|us|ms|sec|bytes|bits|bps|gbps|tbps)\b)";

const std::regex& unit_param_same_line() {
  static const std::regex re(std::string(R"([(,]\s*)") + kUnitParamTypes +
                             kUnitParamSuffix);
  return re;
}
const std::regex& unit_param_wrapped() {
  static const std::regex re(std::string(R"(^\s*)") + kUnitParamTypes +
                             kUnitParamSuffix);
  return re;
}
const std::regex& pragma_once_re() {
  static const std::regex re(R"(^\s*#\s*pragma\s+once\b)");
  return re;
}

// Rule regexes, compiled once, indexed like kRules (pattern-less rules get
// a never-matching placeholder).
const std::vector<std::regex>& compiled_rules() {
  static const std::vector<std::regex> v = [] {
    std::vector<std::regex> out;
    for (const Rule& r : kRules) out.emplace_back(r.pattern ? r.pattern : "$^");
    return out;
  }();
  return v;
}

// Pass-2 rules live in index.cpp (they need the merged cross-file index);
// the entries here feed --list-rules, the docs, and the zero-filled
// rule_counts block in the JSON report.
constexpr RuleInfo kPass2Rules[] = {
    {"no-mutable-global-state",
     "mutable namespace-scope / function-static state is banned in src/ "
     "(shards cannot share it)"},
    {"no-unordered-sim-state",
     "std::unordered_* fields are banned in sim-reachable types (iteration "
     "order would break the deterministic merge)"},
    {"no-pointer-key-order",
     "ordered containers / comparators keyed on pointer values are banned "
     "in src/ (addresses vary run to run)"},
    {"no-shared-mutable-ref",
     "non-const reference/pointer members in sim/, node/, cc/, sched/ must "
     "carry SIRIUS_GUARDED_BY (declared sharing) or a justification"},
    {"float-reduction-order",
     "floating-point += accumulation in loops in stats/ and esn/ needs a "
     "reduction-order justification"},
    {"singleton-telemetry-escape",
     "telemetry Hub access is bound at init (constructors / bind_metrics); "
     "ad-hoc access elsewhere is banned"},
    {"allowlist-sync",
     "every sirius-lint: allow(...) site must be recorded in "
     "tools/sirius_lint/ALLOWLIST.md, and vice versa"},
    {"hot-path-alloc",
     "no heap allocation, container growth on unreserved containers, or "
     "std::function construction reachable from a SIRIUS_HOT entry point"},
    {"hot-path-virtual",
     "no virtual dispatch through non-final methods/classes reachable from "
     "a SIRIUS_HOT entry point"},
    {"hot-path-throw",
     "no throw / .at() / stdio reachable from a SIRIUS_HOT entry point"},
    {"hot-path-copy",
     "SIRIUS_HOT-reachable functions must not take indexed containers by "
     "value"},
    {"layer-order",
     "quoted includes in src/ must follow the declared layer matrix "
     "(common -> check -> leaf modules -> node/sched/ctrl -> sim -> esn -> "
     "core); upward includes are banned"},
    {"include-cycle",
     "the quoted-include graph of the scanned set must be acyclic"},
    {"duplicate-include",
     "a file must not include the same quoted target twice"},
    {"dead-public-symbol",
     "(--dead-symbols) symbols declared in src/ headers with no call site "
     "in the scanned tree are reported for review"},
};

}  // namespace

// ---- suppression comments --------------------------------------------------

bool comment_allows(const std::string& comment, const std::string& rule) {
  static const std::regex re(R"(sirius-lint:\s*allow\(([^)]*)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string list = (*it)[1].str();
    std::string item;
    std::istringstream ss(list);
    while (std::getline(ss, item, ',')) {
      const auto a = item.find_first_not_of(" \t");
      if (a == std::string::npos) continue;
      const auto b = item.find_last_not_of(" \t");
      const std::string name = item.substr(a, b - a + 1);
      if (name == rule || name == "all") return true;
    }
  }
  return false;
}

bool suppressed(const std::vector<std::string>& comments, int line_idx,
                const std::string& rule) {
  if (line_idx < static_cast<int>(comments.size()) &&
      comment_allows(comments[static_cast<std::size_t>(line_idx)], rule)) {
    return true;
  }
  return line_idx > 0 &&
         line_idx - 1 < static_cast<int>(comments.size()) &&
         comment_allows(comments[static_cast<std::size_t>(line_idx - 1)],
                        rule);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string rtrim(const std::string& s) {
  auto end = s.find_last_not_of(" \t\r");
  return end == std::string::npos ? std::string() : s.substr(0, end + 1);
}

namespace {

// Wallclock-exempt files (src/telemetry/profile.* and perf_sampler.*) may call
// steady_clock::now() and nothing else: walk every wallclock match on the
// line and return true if any match is a non-`::now()` primitive, or a
// `::now()` whose receiver is not steady_clock. std::regex has no
// lookbehind, so the receiver check right-trims the text before the match.
bool wallclock_hit_in_exempt_file(const std::string& ln) {
  static const std::regex re(kWallclockPattern);
  for (auto it = std::sregex_iterator(ln.begin(), ln.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::string m = it->str();
    if (m.empty() || m[0] != ':') return true;  // time()/gettimeofday/...
    const std::string before =
        rtrim(ln.substr(0, static_cast<std::size_t>(it->position())));
    static constexpr const char* kAllowedClock = "steady_clock";
    const std::size_t n = std::string(kAllowedClock).size();
    if (before.size() < n || before.compare(before.size() - n, n,
                                            kAllowedClock) != 0) {
      return true;  // some other clock's ::now()
    }
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---- scrub pass ------------------------------------------------------------

std::string scrub(const std::string& text,
                  std::vector<std::string>* comments) {
  enum class St {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  std::string out = text;
  if (comments) comments->assign(split_lines(text).size(), "");

  St st = St::kCode;
  std::size_t line = 0;
  std::string raw_delim;  // the )delim" closer for the active raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') ++line;
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < text.size() && text[p] != '(') ++p;
          raw_delim = ")" + text.substr(i + 2, p - (i + 2)) + "\"";
          for (std::size_t j = i; j <= p && j < text.size(); ++j) out[j] = ' ';
          i = p;
          st = St::kRawString;
        } else if (c == '"') {
          st = St::kString;
          out[i] = ' ';
        } else if (c == '\'' &&
                   // Skip digit separators (1'000'000): a quote directly
                   // between alnum characters is not a char literal.
                   !(i > 0 &&
                     std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                     std::isalnum(static_cast<unsigned char>(next)))) {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
        } else {
          if (comments && line < comments->size()) {
            (*comments)[line] += c;
          }
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          if (comments && line < comments->size()) {
            (*comments)[line] += c;
          }
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (c == raw_delim[0] &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// ---- classification --------------------------------------------------------

FileKind classify(const std::filesystem::path& path) {
  FileKind k;
  const std::string ext = path.extension().string();
  k.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  const auto norm = path.lexically_normal();
  auto it = norm.begin();
  for (; it != norm.end(); ++it) {
    if (*it == "src") {
      k.is_src = true;
      auto next = std::next(it);
      if (next != norm.end() && (*next == "common" || *next == "check")) {
        k.unit_exempt = true;
      }
      if (next != norm.end() && *next == "telemetry") {
        auto file = std::next(next);
        if (file != norm.end() && std::next(file) == norm.end() &&
            (file->stem() == "profile" || file->stem() == "perf_sampler")) {
          k.wallclock_exempt = true;
        }
      }
      break;
    }
  }
  return k;
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> infos = [] {
    std::vector<RuleInfo> v;
    for (const Rule& r : kRules) v.push_back({r.id, r.summary});
    for (const RuleInfo& r : kPass2Rules) v.push_back(r);
    return v;
  }();
  return infos;
}

// ---- rule engine -----------------------------------------------------------

std::vector<Violation> lint_text(const std::string& text,
                                 const std::string& reported_path,
                                 const FileKind& kind) {
  std::vector<std::string> comments;
  const std::string code = scrub(text, &comments);
  const std::vector<std::string> lines = split_lines(code);

  std::vector<Violation> out;
  auto report = [&](int line_idx, const char* id, const char* message) {
    if (suppressed(comments, line_idx, id)) return;
    out.push_back(Violation{reported_path, line_idx + 1, id, message});
  };

  bool saw_pragma_once = false;
  std::string prev_code_tail;  // last non-blank scrubbed line, right-trimmed
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& ln = lines[li];
    if (std::regex_search(ln, pragma_once_re())) saw_pragma_once = true;

    for (const Rule& r : kRules) {
      if (!r.pattern || !r.applies(kind)) continue;
      const std::size_t ri = static_cast<std::size_t>(&r - kRules);
      if (std::regex_search(ln, compiled_rules()[ri])) {
        if (kind.wallclock_exempt && std::strcmp(r.id, "no-wallclock") == 0 &&
            !wallclock_hit_in_exempt_file(ln)) {
          continue;  // steady_clock::now() in the profiler: allowed
        }
        report(static_cast<int>(li), r.id, r.message);
      }
    }

    if (in_unit_guarded_header(kind)) {
      const bool wrapped = (!prev_code_tail.empty() &&
                            (prev_code_tail.back() == '(' ||
                             prev_code_tail.back() == ',')) &&
                           std::regex_search(ln, unit_param_wrapped());
      if (std::regex_search(ln, unit_param_same_line()) || wrapped) {
        report(static_cast<int>(li), "raw-unit-param",
               "raw-unit parameter in a public header: take "
               "Time/DataSize/DataRate instead of a suffixed scalar");
      }
    }

    const std::string trimmed = rtrim(ln);
    if (!trimmed.empty() &&
        trimmed.find_first_not_of(" \t") != std::string::npos) {
      prev_code_tail = trimmed;
    }
  }

  if (kind.is_header && !saw_pragma_once) {
    // File-level rule: the suppression comment may sit on line 1.
    if (!suppressed(comments, 0, "pragma-once")) {
      out.push_back(
          Violation{reported_path, 1, "pragma-once",
                    "header has no #pragma once"});
    }
  }
  return out;
}

std::vector<Violation> lint_file(const std::filesystem::path& path,
                                 const FileKind& kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Violation{path.string(), 0, "io-error", "cannot read file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_text(ss.str(), path.string(), kind);
}

std::string to_json(const std::vector<Violation>& vs, int files_scanned) {
  // Per-rule counts: every known rule id (zero-filled, table order), then
  // any rule id present in the violations but absent from the table (e.g.
  // "io-error"), in first-seen order.
  std::vector<std::pair<std::string, int>> counts;
  for (const RuleInfo& r : rules()) counts.emplace_back(r.id, 0);
  for (const Violation& v : vs) {
    auto it = std::find_if(counts.begin(), counts.end(),
                           [&](const auto& c) { return c.first == v.rule; });
    if (it == counts.end()) {
      counts.emplace_back(v.rule, 1);
    } else {
      ++it->second;
    }
  }

  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << files_scanned
     << ",\n  \"violation_count\": " << vs.size() << ",\n  \"rule_counts\": {";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(counts[i].first)
       << "\": " << counts[i].second;
  }
  os << "\n  },\n  \"violations\": [";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    os << (i ? "," : "") << "\n    {\"file\": \"" << json_escape(vs[i].file)
       << "\", \"line\": " << vs[i].line << ", \"rule\": \""
       << json_escape(vs[i].rule) << "\", \"message\": \""
       << json_escape(vs[i].message) << "\"}";
  }
  os << (vs.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace sirius::lint
