// Pass 1 (structural scanner) and pass 2 (cross-file rules) of the
// shard-safety analyzer. See index.hpp for the architecture overview and
// docs/STATIC_ANALYSIS.md for the rule table.
//
// The scanner walks the scrubbed code view character by character keeping a
// scope stack. Each brace scope gets its own statement accumulator, so an
// inner scope (a brace initialiser, a lambda body inside a call argument)
// never corrupts the statement being collected in the scope around it.
// Brace-initialiser scopes are "transparent": popping them leaves the outer
// accumulator intact, so `std::atomic<Mode> g_mode{kAbort};` is seen as one
// statement `std::atomic<Mode> g_mode` when the `;` finally arrives.
#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace sirius::lint {
namespace {

// ---- small text helpers ----------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

/// Identifier tokens of `s`, in order.
std::vector<std::string> ident_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (ident_char(s[i]) && !std::isdigit(static_cast<unsigned char>(s[i]))) {
      std::size_t j = i;
      while (j < s.size() && ident_char(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
    } else if (ident_char(s[i])) {
      // number (possibly with suffix letters): skip as one unit
      std::size_t j = i;
      while (j < s.size() && (ident_char(s[j]) || s[j] == '.')) ++j;
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

bool has_token(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool has_any_token(const std::string& s,
                   std::initializer_list<const char*> toks) {
  for (const char* t : toks) {
    if (has_token(s, t)) return true;
  }
  return false;
}

/// Control keywords a misread definition head could surface as a
/// "function" name; never record them as definitions or declarations (a
/// phantom `if` entry would wire every if-statement into the call graph).
bool is_cpp_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "else",    "for",      "while",         "do",
      "switch", "case",    "default",  "return",        "break",
      "continue", "goto",  "try",      "catch",         "throw",
      "new",    "delete",  "sizeof",   "alignof",       "decltype",
      "static_assert",     "co_await", "co_return",     "co_yield"};
  return kKeywords.count(name) != 0;
}

/// Strips SIRIUS_* thread-safety macros and alignas(...) from a statement
/// (with or without an argument list), so declarations classify the same
/// annotated and bare. Sets *guarded when a (PT_)GUARDED_BY was present.
std::string strip_attr_macros(const std::string& s, bool* guarded) {
  static const std::regex with_args(
      R"((\bSIRIUS_[A-Z_]+|\balignas)\s*\(([^()]|\([^()]*\))*\))");
  static const std::regex bare(R"(\bSIRIUS_[A-Z_]+\b)");
  if (guarded) {
    static const std::regex g(R"(\bSIRIUS_(PT_)?GUARDED_BY\s*\()");
    *guarded = std::regex_search(s, g);
  }
  return std::regex_replace(std::regex_replace(s, with_args, " "), bare, " ");
}

/// Finds the first "top-level" occurrence of `want` in `s`: outside (), [],
/// and a best-effort reading of template <>. Returns npos when absent.
/// `want` must be a single char; ':' means a lone colon (not '::').
std::size_t find_top_level(const std::string& s, char want) {
  int paren = 0, bracket = 0, angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char prev = i > 0 ? s[i - 1] : '\0';
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    // The match test runs before the depth update, so an opening bracket
    // can itself be found at top level.
    if (c == want && paren == 0 && bracket == 0 && angle == 0) {
      const bool colon_part_of_scope =
          want == ':' && (prev == ':' || next == ':');
      const bool eq_part_of_operator =
          want == '=' &&
          (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
           prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
           prev == '|' || prev == '&' || prev == '^' || prev == '%' ||
           next == '=');
      if (!colon_part_of_scope && !eq_part_of_operator) return i;
    }
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      paren = std::max(0, paren - 1);
    } else if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      bracket = std::max(0, bracket - 1);
    } else if (c == '<' && next != '<' && next != '=' && prev != '<') {
      // Angle opens only after an identifier/:: tail (template-arg-ish).
      std::size_t p = s.find_last_not_of(" \t", i == 0 ? 0 : i - 1);
      if (i > 0 && p != std::string::npos &&
          (ident_char(s[p]) || s[p] == ':' || s[p] == '>')) {
        ++angle;
      }
    } else if (c == '>' && angle > 0 && prev != '-') {
      --angle;
    }
  }
  return std::string::npos;
}

/// Removes every [...] group (array extents) — non-nesting is fine here.
std::string strip_brackets(const std::string& s) {
  static const std::regex re(R"(\[[^\][]*\])");
  return std::regex_replace(s, re, "");
}

/// Removes the contents of template argument lists, keeping the <>, so
/// `std::function<void(Foo&)>` stops looking like it has a ref/paren.
std::string strip_angle_contents(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char prev = i > 0 ? s[i - 1] : '\0';
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '<' && next != '<' && prev != '<' && i > 0 &&
        (ident_char(prev) || prev == ':' || prev == '>')) {
      if (angle == 0) out += '<';
      ++angle;
      continue;
    }
    if (c == '>' && angle > 0 && prev != '-') {
      --angle;
      if (angle == 0) out += '>';
      continue;
    }
    if (angle == 0) out += c;
  }
  return out;
}

/// Declaration name: last identifier token of the declarator part (array
/// extents stripped). Empty when the text has fewer than two identifier
/// tokens (not a type+name declaration).
std::string decl_name(const std::string& decl) {
  const auto toks = ident_tokens(strip_brackets(decl));
  return toks.size() >= 2 ? toks.back() : std::string();
}

// ---- the structural scanner ------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kEnum, kFunction, kLoop, kBlock, kInit };
  Kind kind = kBlock;
  std::string name;       // class name / function name
  bool is_ctor = false;   // Function scopes only
  bool is_lambda = false; // Function scopes only: a lambda body (named after
                          // its enclosing function so per-line attribution
                          // and hot-path reachability see through it)
};

struct Pending {
  std::string text;
  int first_line = -1;  // 0-based line of the first non-space char
  int paren_depth = 0;
};

class Scanner {
 public:
  Scanner(const std::string& text, const std::string& reported_path,
          const std::string& effective_path, const FileKind& kind) {
    idx_.path = reported_path;
    idx_.effective_path = effective_path;
    idx_.kind = kind;
    idx_.lines = split_lines(scrub(text, &idx_.comments));
    const std::size_t n = idx_.lines.size();
    idx_.loop_depth.assign(n, 0);
    idx_.enclosing_fn.assign(n, "");
    idx_.in_ctor.assign(n, false);
    collect_includes(text);
    collect_allows();
  }

  FileIndex run() {
    pendings_.push_back(Pending{});
    bool in_preprocessor = false;  // inside a #directive (incl. \-continued)
    for (std::size_t li = 0; li < idx_.lines.size(); ++li) {
      line_ = static_cast<int>(li);
      record_line_state(li);
      const std::string& ln = idx_.lines[li];
      const auto first = ln.find_first_not_of(" \t");
      if (in_preprocessor ||
          (first != std::string::npos && ln[first] == '#')) {
        // Preprocessor logical lines (a #define body is not code in scope).
        const std::string t = rtrim(ln);
        in_preprocessor = !t.empty() && t.back() == '\\';
        continue;
      }
      scan_line(ln);
    }
    // An unterminated trailing statement (no final ';') is dropped — the
    // scanner prefers missing a declaration over misreading one.
    return std::move(idx_);
  }

 private:
  void collect_includes(const std::string& raw) {
    static const std::regex re(R"re(^\s*#\s*include\s*"([^"]+)")re");
    const auto lines = split_lines(raw);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      std::smatch m;
      if (std::regex_search(lines[li], m, re)) {
        idx_.includes.push_back(
            IncludeEdge{m[1].str(), static_cast<int>(li) + 1});
      }
    }
  }

  void collect_allows() {
    static const std::regex re(R"(sirius-lint:\s*allow\(([^)]*)\))");
    for (std::size_t li = 0; li < idx_.comments.size(); ++li) {
      const std::string& c = idx_.comments[li];
      for (auto it = std::sregex_iterator(c.begin(), c.end(), re);
           it != std::sregex_iterator(); ++it) {
        std::istringstream ss((*it)[1].str());
        std::string item;
        while (std::getline(ss, item, ',')) {
          const std::string rule = trim(item);
          if (!rule.empty()) {
            idx_.allows.push_back(
                AllowSite{static_cast<int>(li) + 1, rule});
          }
        }
      }
    }
  }

  int loop_count() const {
    int n = 0;
    for (const Scope& s : scopes_) n += s.kind == Scope::kLoop ? 1 : 0;
    return n;
  }

  const Scope* innermost_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &*it;
    }
    return nullptr;
  }

  /// The scope that gives a `;`-terminated statement its meaning: the
  /// innermost function, class, or namespace (Init/Loop/Block/Enum are
  /// transparent). Returns nullptr at file scope.
  const Scope* decl_context() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kClass ||
          it->kind == Scope::kNamespace || it->kind == Scope::kEnum) {
        return &*it;
      }
    }
    return nullptr;
  }

  void record_line_state(std::size_t li) {
    idx_.loop_depth[li] = std::max(idx_.loop_depth[li], loop_count());
    if (const Scope* fn = innermost_fn()) {
      idx_.enclosing_fn[li] = fn->name;
      idx_.in_ctor[li] = idx_.in_ctor[li] || fn->is_ctor;
    }
  }

  void scan_line(const std::string& ln) {
    for (std::size_t i = 0; i < ln.size(); ++i) {
      const char c = ln[i];
      Pending& p = pendings_.back();
      if (c == '{') {
        push_scope();
      } else if (c == '}') {
        pop_scope();
      } else if (c == ';' && p.paren_depth == 0) {
        handle_statement();
      } else {
        if (c == '(') ++p.paren_depth;
        if (c == ')') p.paren_depth = std::max(0, p.paren_depth - 1);
        append(c);
        if (c == ':') maybe_clear_access_specifier();
      }
    }
    append(' ');
  }

  void append(char c) {
    Pending& p = pendings_.back();
    if (c == ' ' || c == '\t') {
      if (!p.text.empty() && p.text.back() != ' ') p.text += ' ';
      return;
    }
    if (p.first_line < 0) p.first_line = line_;
    p.text += c;
  }

  void maybe_clear_access_specifier() {
    Pending& p = pendings_.back();
    const std::string t = trim(p.text);
    if (t == "public:" || t == "private:" || t == "protected:") {
      p.text.clear();
      p.first_line = -1;
    }
  }

  void push_scope() {
    Pending& p = pendings_.back();
    const std::string raw = trim(p.text);
    const int head_line = p.first_line < 0 ? line_ : p.first_line;
    scopes_.push_back(classify_brace(raw));
    const Scope& s = scopes_.back();
    if (s.kind == Scope::kFunction && !s.is_lambda && !s.name.empty() &&
        !is_cpp_keyword(s.name)) {
      FunctionDef fd;
      fd.name = s.name;
      fd.line = head_line + 1;
      fd.hot = has_token(raw, "SIRIUS_HOT");
      fd.signature = trim(strip_attr_macros(raw, nullptr));
      // The defining scope, seen from outside this new function scope.
      if (scopes_.size() >= 2) {
        for (auto it = std::next(scopes_.rbegin()); it != scopes_.rend();
             ++it) {
          if (it->kind == Scope::kFunction || it->kind == Scope::kClass ||
              it->kind == Scope::kNamespace) {
            if (it->kind == Scope::kClass) fd.klass = it->name;
            break;
          }
        }
      }
      idx_.fns.push_back(fd);
      if (!fd.klass.empty()) {
        // An in-class definition is also a declaration: record it so the
        // virtual-dispatch rule sees inline-defined virtual methods.
        MethodDecl md;
        md.klass = fd.klass;
        md.name = fd.name;
        md.line = fd.line;
        md.hot = fd.hot;
        md.is_virtual = has_token(fd.signature, "virtual");
        md.is_final = has_token(fd.signature, "final");
        md.signature = fd.signature;
        idx_.decls.push_back(md);
      }
    } else if (s.kind == Scope::kClass && !s.name.empty()) {
      ClassDecl cd;
      cd.name = s.name;
      cd.line = head_line + 1;
      cd.is_final = has_token(trim(strip_attr_macros(raw, nullptr)), "final");
      idx_.classes.push_back(cd);
    }
    if (s.kind == Scope::kLoop || s.kind == Scope::kFunction) {
      // A loop / function opening on this line affects the rest of it.
      record_line_state(static_cast<std::size_t>(line_));
    }
    pendings_.push_back(Pending{});
  }

  void pop_scope() {
    if (scopes_.empty()) return;  // unbalanced (e.g. a macro'd brace): bail
    const Scope popped = scopes_.back();
    scopes_.pop_back();
    pendings_.pop_back();
    if (popped.kind != Scope::kInit) {
      // A real scope ended: whatever introduced it is consumed.
      pendings_.back().text.clear();
      pendings_.back().first_line = -1;
    }
  }

  /// A lambda body counts as part of its enclosing function: per-line
  /// attribution, ctor detection and hot-path reachability all see through
  /// it (a lambda defined inside a hot function runs on the hot path).
  void make_lambda(Scope& s) const {
    s.kind = Scope::kFunction;
    s.is_lambda = true;
    if (const Scope* fn = innermost_fn()) {
      s.name = fn->name;
      s.is_ctor = fn->is_ctor;
    } else {
      s.name = "<lambda>";
    }
  }

  /// Decides what kind of scope a `{` opens, from the statement text
  /// accumulated since the last boundary. Mirrors the decision table in
  /// docs/STATIC_ANALYSIS.md; unknown shapes become transparent kInit so a
  /// misread never swallows surrounding declarations.
  Scope classify_brace(const std::string& raw_pending) const {
    Scope s;
    if (pendings_.back().paren_depth > 0) {
      // `{` inside an argument list: a lambda body (capture list present)
      // or an initialiser-list argument. Both leave the outer statement
      // alone; a lambda additionally becomes the enclosing function.
      if (raw_pending.find('[') != std::string::npos) {
        make_lambda(s);
      } else {
        s.kind = Scope::kInit;
      }
      return s;
    }
    const std::string pending = trim(strip_attr_macros(raw_pending, nullptr));
    if (pending.empty()) {
      s.kind = Scope::kBlock;
      return s;
    }
    const auto toks = ident_tokens(pending);
    if (toks.empty()) {
      s.kind = Scope::kInit;  // pure-symbol pending: an initialiser shape
      return s;
    }
    if (has_token(pending, "enum")) {
      s.kind = Scope::kEnum;
      return s;
    }
    if (has_token(pending, "namespace") || toks.front() == "extern") {
      s.kind = Scope::kNamespace;
      return s;
    }
    const std::size_t eq = find_top_level(pending, '=');
    const std::size_t paren = find_top_level(pending, '(');
    if ((has_token(pending, "class") || has_token(pending, "struct") ||
         has_token(pending, "union")) &&
        paren == std::string::npos && eq == std::string::npos) {
      s.kind = Scope::kClass;
      // name: identifier right after the keyword
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i] == "class" || toks[i] == "struct" || toks[i] == "union") {
          s.name = toks[i + 1];
          break;
        }
      }
      return s;
    }
    if (toks.front() == "for" || toks.front() == "while" ||
        toks.front() == "do") {
      s.kind = Scope::kLoop;
      return s;
    }
    if (toks.front() == "if" || toks.front() == "switch" ||
        toks.front() == "else" || toks.front() == "try" ||
        toks.front() == "catch" || toks.front() == "case" ||
        toks.front() == "default") {
      // `case X:` / `default:` prefixes mean a control brace inside a
      // switch body, never a definition head.
      s.kind = Scope::kBlock;
      return s;
    }
    if (eq != std::string::npos) {
      // `x = [captures](args)` opens a lambda body; any other initialiser
      // brace is transparent.
      if (pending.find('[', eq) != std::string::npos) {
        make_lambda(s);
      } else {
        s.kind = Scope::kInit;
      }
      return s;
    }
    if (paren != std::string::npos) {
      s.kind = Scope::kFunction;
      // name: identifier immediately before the first top-level '('
      const std::string head = trim(pending.substr(0, paren));
      const auto head_toks = ident_tokens(head);
      if (!head_toks.empty()) s.name = head_toks.back();
      if (!s.name.empty()) {
        // ctor: `X::X(` or a function named like its enclosing class
        const std::string qual = s.name + "::" + s.name;
        if (head.size() >= qual.size() &&
            head.compare(head.size() - qual.size(), qual.size(), qual) == 0) {
          s.is_ctor = true;
        } else if (const Scope* ctx = decl_context();
                   ctx && ctx->kind == Scope::kClass && ctx->name == s.name) {
          s.is_ctor = true;
        }
      }
      return s;
    }
    s.kind = Scope::kInit;  // `Type name{...}` and anything unrecognised
    return s;
  }

  void handle_statement() {
    Pending& p = pendings_.back();
    const std::string stmt = trim(p.text);
    const int stmt_line = p.first_line < 0 ? line_ : p.first_line;
    p.text.clear();
    p.first_line = -1;
    if (stmt.empty()) return;
    const Scope* ctx = decl_context();
    if (ctx && ctx->kind == Scope::kFunction) {
      handle_local(stmt, stmt_line);
    } else if (ctx && ctx->kind == Scope::kClass) {
      handle_field(stmt, stmt_line, ctx->name);
    } else if (!ctx || ctx->kind == Scope::kNamespace) {
      handle_global(stmt, stmt_line);
    }
    // kEnum: enumerators, nothing to extract.
  }

  void note_float_decl(const std::string& decl) {
    if (has_token(decl, "double") || has_token(decl, "float")) {
      const std::string name = decl_name(decl);
      if (!name.empty()) idx_.float_names.push_back(name);
    }
  }

  /// Statement directly in a namespace / at file scope.
  void handle_global(const std::string& raw, int line0) {
    bool guarded = false;
    const std::string stmt = trim(strip_attr_macros(raw, &guarded));
    if (stmt.empty()) return;
    const auto toks = ident_tokens(stmt);
    if (toks.size() < 2) return;
    if (has_any_token(stmt, {"using", "typedef", "extern", "friend",
                             "template", "static_assert", "operator",
                             "namespace", "struct", "class", "enum", "union",
                             "concept", "requires"})) {
      return;
    }
    if (has_any_token(stmt, {"const", "constexpr"})) return;
    const std::size_t eq = find_top_level(stmt, '=');
    const std::string decl =
        eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    const std::size_t gparen = find_top_level(decl, '(');
    if (gparen != std::string::npos) {  // free-function declaration
      const auto head_toks = ident_tokens(trim(decl.substr(0, gparen)));
      if (!head_toks.empty() && !is_cpp_keyword(head_toks.back())) {
        MethodDecl md;
        md.name = head_toks.back();
        md.line = line0 + 1;
        md.hot = has_token(raw, "SIRIUS_HOT");
        md.signature = decl;
        idx_.decls.push_back(md);
      }
      return;
    }
    const std::string name = decl_name(decl);
    if (name.empty()) return;
    GlobalVar g;
    g.name = name;
    g.line = line0 + 1;
    g.function_local = false;
    g.is_thread_local = has_token(stmt, "thread_local");
    g.type_text = decl;
    idx_.globals.push_back(g);
    note_float_decl(decl);
  }

  /// Statement directly in a class body: member declarations.
  void handle_field(const std::string& raw, int line0,
                    const std::string& klass) {
    bool guarded = false;
    const std::string stmt = trim(strip_attr_macros(raw, &guarded));
    if (stmt.empty()) return;
    if (has_any_token(stmt, {"using", "typedef", "friend", "template",
                             "static_assert", "operator", "public",
                             "private", "protected"})) {
      return;
    }
    const auto toks = ident_tokens(stmt);
    if (toks.size() < 2) return;
    if (toks.front() == "struct" || toks.front() == "class" ||
        toks.front() == "enum" || toks.front() == "union") {
      return;  // nested forward declaration
    }
    if (has_token(stmt, "static")) {
      // static data member: mutable class-wide state
      if (has_any_token(stmt, {"const", "constexpr"})) return;
      const std::size_t eq = find_top_level(stmt, '=');
      std::string decl = eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
      if (find_top_level(decl, '(') != std::string::npos) return;
      const std::string name = decl_name(decl);
      if (name.empty()) return;
      GlobalVar g;
      g.name = klass.empty() ? name : klass + "::" + name;
      g.line = line0 + 1;
      g.type_text = decl;
      idx_.globals.push_back(g);
      return;
    }
    std::size_t eq = find_top_level(stmt, '=');
    std::string decl = eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    const std::size_t mparen = find_top_level(decl, '(');
    if (mparen != std::string::npos) {  // method declaration
      const auto head_toks = ident_tokens(trim(decl.substr(0, mparen)));
      if (!head_toks.empty() && !is_cpp_keyword(head_toks.back())) {
        MethodDecl md;
        md.klass = klass;
        md.name = head_toks.back();
        md.line = line0 + 1;
        md.hot = has_token(raw, "SIRIUS_HOT");
        md.is_virtual = has_token(decl, "virtual");
        md.is_final = has_token(decl, "final");
        md.signature = decl;
        idx_.decls.push_back(md);
      }
      return;
    }
    const std::size_t colon = find_top_level(decl, ':');
    if (colon != std::string::npos) decl = trim(decl.substr(0, colon));  // bitfield
    const std::string name = decl_name(decl);
    if (name.empty()) return;
    Field f;
    f.klass = klass;
    f.name = name;
    f.line = line0 + 1;
    f.annotated = guarded;
    const std::size_t at = decl.rfind(name);
    f.type_text = trim(at == std::string::npos ? decl : decl.substr(0, at));
    idx_.fields.push_back(f);
    note_float_decl(decl);
  }

  /// Statement inside a function body: function-local statics + float names.
  void handle_local(const std::string& raw, int line0) {
    const std::string stmt = trim(strip_attr_macros(raw, nullptr));
    if (stmt.empty()) return;
    const auto toks = ident_tokens(stmt);
    if (toks.empty()) return;
    static const std::set<std::string> kStmtKeywords = {
        "return", "if",    "for",   "while", "do",   "else",
        "switch", "case",  "break", "continue", "goto", "delete",
        "throw",  "using", "typedef"};
    if (kStmtKeywords.count(toks.front()) != 0) return;
    const std::size_t eq = find_top_level(stmt, '=');
    const std::string decl =
        eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    if (has_token(stmt, "static") || has_token(stmt, "thread_local")) {
      if (!has_any_token(stmt, {"const", "constexpr"}) &&
          find_top_level(decl, '(') == std::string::npos) {
        const std::string name = decl_name(decl);
        if (!name.empty()) {
          GlobalVar g;
          g.name = name;
          g.line = line0 + 1;
          g.function_local = true;
          g.is_thread_local = has_token(stmt, "thread_local");
          g.type_text = decl;
          idx_.globals.push_back(g);
        }
      }
    }
    if (find_top_level(decl, '(') == std::string::npos) note_float_decl(decl);
  }

  FileIndex idx_;
  std::vector<Scope> scopes_;
  std::vector<Pending> pendings_;
  int line_ = 0;
};

// ---- pass-2 helpers --------------------------------------------------------

/// True when `p` (the effective path) contains the components `src/<sub>`
/// for any listed sub, or just `src` when subs is empty.
bool under_src(const std::string& p, std::initializer_list<const char*> subs) {
  const fs::path norm = fs::path(p).lexically_normal();
  auto it = norm.begin();
  for (; it != norm.end(); ++it) {
    if (*it == "src") {
      if (subs.size() == 0) return true;
      auto next = std::next(it);
      if (next == norm.end()) return false;
      for (const char* s : subs) {
        if (*next == s) return true;
      }
      return false;
    }
  }
  return false;
}

/// True when path `full` ends with the components of `suffix`.
bool path_ends_with(const std::string& full, const std::string& suffix) {
  const fs::path f = fs::path(full).lexically_normal();
  const fs::path s = fs::path(suffix).lexically_normal();
  std::vector<std::string> fc, sc;
  for (const auto& c : f) fc.push_back(c.string());
  for (const auto& c : s) sc.push_back(c.string());
  if (sc.empty() || sc.size() > fc.size()) return false;
  return std::equal(sc.rbegin(), sc.rend(), fc.rbegin());
}

void report(std::vector<Violation>& out, const FileIndex& f, int line,
            const char* rule, const std::string& msg) {
  if (suppressed(f.comments, line - 1, rule)) return;
  out.push_back(Violation{f.path, line, rule, msg});
}

// ---- pass-2 rules ----------------------------------------------------------

void rule_mutable_global(const std::vector<FileIndex>& files,
                         std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (const GlobalVar& g : f.globals) {
      std::ostringstream msg;
      if (g.function_local) {
        msg << "function-local " << (g.is_thread_local ? "thread_local" : "static")
            << " `" << g.name << "`";
      } else {
        msg << "mutable " << (g.is_thread_local ? "thread_local" : "namespace-scope")
            << " state `" << g.name << "`";
      }
      msg << " in library code: sharded slot execution cannot share it; "
             "move it into an owning object, or allow() with a written "
             "justification and an ALLOWLIST.md entry";
      report(out, f, g.line, "no-mutable-global-state", msg.str());
    }
  }
}

/// One resolved include edge: scanned-set index of the included file plus
/// the 1-based line of the directive in the including file.
struct ResolvedInclude {
  std::size_t target = 0;
  int line = 0;
};

/// Resolves every quoted include of every scanned file against the scanned
/// set. Targets resolve against both the real and the effective path of
/// every file (suffix match on path components, then unique-basename and
/// bare-basename fallbacks). Self-edges (a file including its own name) are
/// kept only when `keep_self` — the cycle rule wants them, reachability
/// does not.
std::vector<std::vector<ResolvedInclude>> resolve_includes(
    const std::vector<FileIndex>& files, bool keep_self) {
  const std::size_t n = files.size();
  std::vector<std::vector<ResolvedInclude>> edges(n);
  std::map<std::string, std::vector<std::size_t>> by_basename;
  for (std::size_t i = 0; i < n; ++i) {
    by_basename[fs::path(files[i].path).filename().string()].push_back(i);
    by_basename[fs::path(files[i].effective_path).filename().string()]
        .push_back(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const IncludeEdge& inc : files[i].includes) {
      const std::string base = fs::path(inc.target).filename().string();
      const auto it = by_basename.find(base);
      if (it == by_basename.end()) continue;
      for (std::size_t j : it->second) {
        if (j == i && !keep_self) continue;
        if (path_ends_with(files[j].path, inc.target) ||
            path_ends_with(files[j].effective_path, inc.target) ||
            it->second.size() == 1 ||
            fs::path(inc.target).filename() == inc.target) {
          edges[i].push_back(ResolvedInclude{j, inc.line});
        }
      }
    }
  }
  return edges;
}

void rule_unordered_sim_state(const std::vector<FileIndex>& files,
                              std::vector<Violation>& out) {
  // Sim-reachable = transitive closure of quoted-include edges starting
  // from files under src/sim.
  const std::size_t n = files.size();
  const auto edges = resolve_includes(files, /*keep_self=*/false);
  std::vector<char> reach(n, 0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (under_src(files[i].effective_path, {"sim"})) {
      reach[i] = 1;
      stack.push_back(i);
    }
  }
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    for (const ResolvedInclude& e : edges[i]) {
      if (!reach[e.target]) {
        reach[e.target] = 1;
        stack.push_back(e.target);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!reach[i] || !files[i].kind.is_src) continue;
    for (const Field& fld : files[i].fields) {
      if (has_any_token(fld.type_text,
                        {"unordered_map", "unordered_set",
                         "unordered_multimap", "unordered_multiset"})) {
        report(out, files[i], fld.line, "no-unordered-sim-state",
               "field `" + fld.name + "` of sim-reachable type `" +
                   fld.klass +
                   "` uses std::unordered_*: hash iteration order would "
                   "leak into the deterministic merge; use std::map/set or "
                   "an index-keyed vector");
      }
    }
  }
}

void rule_pointer_key_order(const std::vector<FileIndex>& files,
                            std::vector<Violation>& out) {
  static const std::regex re(
      R"(std\s*::\s*(?:multi)?(?:map|set)\s*<\s*[^<>,;=]*\*|std\s*::\s*(?:less|greater)\s*<[^<>,;]*\*\s*>)");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (std::regex_search(f.lines[li], re)) {
        report(out, f, static_cast<int>(li) + 1, "no-pointer-key-order",
               "ordered container or comparator keyed on a pointer value: "
               "addresses differ run to run, so iteration order is not "
               "reproducible; key on a stable id instead");
      }
    }
  }
}

void rule_shared_mutable_ref(const std::vector<FileIndex>& files,
                             std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    if (!under_src(f.effective_path, {"sim", "node", "cc", "sched"})) continue;
    for (const Field& fld : f.fields) {
      if (fld.annotated) continue;
      const std::string t = strip_angle_contents(fld.type_text);
      if (t.find('*') == std::string::npos &&
          t.find('&') == std::string::npos) {
        continue;
      }
      if (has_token(t, "const")) continue;
      report(out, f, fld.line, "no-shared-mutable-ref",
             "member `" + fld.name + "` of `" + fld.klass +
                 "` aliases mutable state across a future shard boundary "
                 "(non-const pointer/reference): annotate it with "
                 "SIRIUS_GUARDED_BY(<role>) to declare the sharing, or "
                 "allow() with a justification");
    }
  }
}

void rule_float_reduction(const std::vector<FileIndex>& files,
                          std::vector<Violation>& out) {
  static const std::regex re(R"(\b([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)?\+=)");
  for (const FileIndex& f : files) {
    if (!under_src(f.effective_path, {"stats", "esn"})) continue;
    if (!f.kind.is_src) continue;
    const std::set<std::string> floats(f.float_names.begin(),
                                       f.float_names.end());
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (f.loop_depth[li] == 0) continue;
      const std::string& ln = f.lines[li];
      for (auto it = std::sregex_iterator(ln.begin(), ln.end(), re);
           it != std::sregex_iterator(); ++it) {
        if (floats.count((*it)[1].str()) != 0) {
          report(out, f, static_cast<int>(li) + 1, "float-reduction-order",
                 "floating-point accumulation `" + (*it)[1].str() +
                     " +=` in a loop: the reduction order becomes part of "
                     "the result; document why the iteration order is "
                     "deterministic via allow(float-reduction-order)");
          break;
        }
      }
    }
  }
}

void rule_telemetry_escape(const std::vector<FileIndex>& files,
                           std::vector<Violation>& out) {
  static const std::regex re(
      R"((?:\.|->)\s*metrics\s*\(\s*\)|\bHub\s*::\s*instance\b)");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src || under_src(f.effective_path, {"telemetry"})) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (!std::regex_search(f.lines[li], re)) continue;
      const std::string& fn = f.enclosing_fn[li];
      if (f.in_ctor[li] || fn.find("bind_metrics") != std::string::npos) {
        continue;  // the bound-at-init pattern
      }
      report(out, f, static_cast<int>(li) + 1, "singleton-telemetry-escape",
             "telemetry Hub registry access outside a constructor or "
             "bind_metrics(): bind instrument pointers once at init and "
             "use those on the hot path, so shards never race on the "
             "registry");
    }
  }
}

// ---- hot-path call-graph rules ---------------------------------------------

/// Names reachable from a SIRIUS_HOT function head over the conservative
/// name-keyed call graph. Call sites are identifier-followed-by-`(`
/// occurrences inside function bodies, filtered to names the scanned set
/// defines or declares; same-named functions merge, so reachability
/// over-approximates (a false positive is silenced with allow(), a miss
/// would let an allocation into the slot kernel).
struct HotClosure {
  std::set<std::string> hot;
};

HotClosure build_hot_closure(const std::vector<FileIndex>& files) {
  std::set<std::string> known;
  std::set<std::string> seeds;
  for (const FileIndex& f : files) {
    for (const FunctionDef& fn : f.fns) {
      known.insert(fn.name);
      if (fn.hot) seeds.insert(fn.name);
    }
    for (const MethodDecl& d : f.decls) {
      known.insert(d.name);
      if (d.hot) seeds.insert(d.name);
    }
  }
  static const std::regex call_re(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  std::map<std::string, std::set<std::string>> edges;
  for (const FileIndex& f : files) {
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      const std::string& caller = f.enclosing_fn[li];
      if (caller.empty()) continue;
      for (auto it = std::sregex_iterator(f.lines[li].begin(),
                                          f.lines[li].end(), call_re);
           it != std::sregex_iterator(); ++it) {
        const std::string callee = (*it)[1].str();
        if (callee != caller && known.count(callee) != 0) {
          edges[caller].insert(callee);
        }
      }
    }
  }
  HotClosure hc;
  hc.hot = seeds;
  std::vector<std::string> stack(seeds.begin(), seeds.end());
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    const auto eit = edges.find(cur);
    if (eit == edges.end()) continue;
    for (const std::string& nxt : eit->second) {
      if (hc.hot.insert(nxt).second) stack.push_back(nxt);
    }
  }
  return hc;
}

bool line_is_hot(const HotClosure& hc, const FileIndex& f, std::size_t li) {
  const std::string& fn = f.enclosing_fn[li];
  return !fn.empty() && hc.hot.count(fn) != 0;
}

void rule_hot_path_alloc(const std::vector<FileIndex>& files,
                         const HotClosure& hc, std::vector<Violation>& out) {
  static const std::regex alloc_re(
      R"(\bnew\b|\b(?:malloc|calloc|realloc)\s*\(|\bmake_(?:unique|shared)\s*<)");
  static const std::regex func_re(R"(std\s*::\s*function\s*<)");
  static const std::regex grow_re(
      R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\]\s*)*\.\s*(push_back|emplace_back|push_front|emplace_front|emplace|insert|resize)\s*\()");
  static const std::regex presize_re(
      R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\]\s*)*\.\s*(?:reserve|resize|assign)\s*\()");

  // Pre-sizing sites anywhere in the scanned set exempt growth calls on the
  // same base identifier (the reserve-in-ctor pattern). A line cannot exempt
  // itself, so a bare hot-path resize still fires.
  struct Site {
    std::size_t file;
    std::size_t line;
  };
  std::map<std::string, std::vector<Site>> presized;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (std::size_t li = 0; li < files[i].lines.size(); ++li) {
      for (auto it = std::sregex_iterator(files[i].lines[li].begin(),
                                          files[i].lines[li].end(), presize_re);
           it != std::sregex_iterator(); ++it) {
        presized[(*it)[1].str()].push_back(Site{i, li});
      }
    }
  }
  const auto exempt = [&presized](const std::string& base, std::size_t fi,
                                  std::size_t li) {
    const auto it = presized.find(base);
    if (it == presized.end()) return false;
    for (const Site& s : it->second) {
      if (s.file != fi || s.line != li) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < files.size(); ++i) {
    const FileIndex& f = files[i];
    if (!f.kind.is_src) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (!line_is_hot(hc, f, li)) continue;
      const std::string& text = f.lines[li];
      const int line1 = static_cast<int>(li) + 1;
      if (std::regex_search(text, alloc_re)) {
        report(out, f, line1, "hot-path-alloc",
               "heap allocation in `" + f.enclosing_fn[li] +
                   "`, reachable from a SIRIUS_HOT entry point: the slot "
                   "kernel must be pre-sized; allocate at construction or "
                   "allow() with an ALLOWLIST.md entry");
        continue;
      }
      if (std::regex_search(text, func_re) &&
          text.find('&') == std::string::npos) {
        report(out, f, line1, "hot-path-alloc",
               "std::function construction in `" + f.enclosing_fn[li] +
                   "`, reachable from a SIRIUS_HOT entry point: capture "
                   "state at init and pass a reference, or devirtualize "
                   "the callback");
        continue;
      }
      for (auto it = std::sregex_iterator(text.begin(), text.end(), grow_re);
           it != std::sregex_iterator(); ++it) {
        const std::string base = (*it)[1].str();
        if (exempt(base, i, li)) continue;
        report(out, f, line1, "hot-path-alloc",
               "`" + base + "." + (*it)[2].str() + "()` in `" +
                   f.enclosing_fn[li] +
                   "`, reachable from a SIRIUS_HOT entry point, grows a "
                   "container with no reserve()/resize() site anywhere in "
                   "the tree: pre-size it at construction or allow() with "
                   "an ALLOWLIST.md entry");
      }
    }
  }
}

void rule_hot_path_virtual(const std::vector<FileIndex>& files,
                           const HotClosure& hc, std::vector<Violation>& out) {
  // Classes marked final anywhere in the scanned set.
  std::set<std::string> final_classes;
  for (const FileIndex& f : files) {
    for (const ClassDecl& c : f.classes) {
      if (c.is_final) final_classes.insert(c.name);
    }
  }
  // Devirtualizable = declared virtual, not a final method, not on a final
  // class. Ctors/dtors (name == class) are skipped: constructing on the hot
  // path is the alloc rule's business.
  std::map<std::string, std::string> virtuals;  // name -> Klass::name
  for (const FileIndex& f : files) {
    for (const MethodDecl& d : f.decls) {
      if (!d.is_virtual || d.is_final || d.name == d.klass) continue;
      if (final_classes.count(d.klass) != 0) continue;
      virtuals.emplace(d.name, d.klass.empty() ? d.name
                                               : d.klass + "::" + d.name);
    }
  }
  if (virtuals.empty()) return;
  static const std::regex call_re(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (!line_is_hot(hc, f, li)) continue;
      for (auto it = std::sregex_iterator(f.lines[li].begin(),
                                          f.lines[li].end(), call_re);
           it != std::sregex_iterator(); ++it) {
        const auto vit = virtuals.find((*it)[1].str());
        if (vit == virtuals.end()) continue;
        report(out, f, static_cast<int>(li) + 1, "hot-path-virtual",
               "call to virtual `" + vit->second + "` in `" +
                   f.enclosing_fn[li] +
                   "`, reachable from a SIRIUS_HOT entry point: mark the "
                   "method or its class `final` so the slot kernel "
                   "dispatches statically, or allow() with an ALLOWLIST.md "
                   "entry");
        break;  // one report per line
      }
    }
  }
}

void rule_hot_path_throw(const std::vector<FileIndex>& files,
                         const HotClosure& hc, std::vector<Violation>& out) {
  static const std::regex throw_re(
      R"(\bthrow\b|\.\s*at\s*\(|\b(?:printf|fprintf|sprintf|snprintf|puts|fputs)\s*\(|std\s*::\s*(?:cout|cerr|clog)\b)");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (!line_is_hot(hc, f, li)) continue;
      if (!std::regex_search(f.lines[li], throw_re)) continue;
      report(out, f, static_cast<int>(li) + 1, "hot-path-throw",
             "throw/stdio in `" + f.enclosing_fn[li] +
                 "`, reachable from a SIRIUS_HOT entry point: the slot "
                 "kernel cannot unwind or block on I/O; report through "
                 "bound instruments or the invariant sink instead");
    }
  }
}

void rule_hot_path_copy(const std::vector<FileIndex>& files,
                        const HotClosure& hc, std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (const FunctionDef& fn : f.fns) {
      if (hc.hot.count(fn.name) == 0) continue;
      const std::size_t open = fn.signature.find('(');
      if (open == std::string::npos) continue;
      // Matching close paren of the parameter list.
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t k = open; k < fn.signature.size(); ++k) {
        if (fn.signature[k] == '(') ++depth;
        if (fn.signature[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos || close <= open + 1) continue;
      const std::string params = strip_angle_contents(
          fn.signature.substr(open + 1, close - open - 1));
      // Split on top-level commas.
      std::vector<std::string> parts;
      depth = 0;
      std::size_t start = 0;
      for (std::size_t k = 0; k <= params.size(); ++k) {
        if (k == params.size() || (params[k] == ',' && depth == 0)) {
          parts.push_back(trim(params.substr(start, k - start)));
          start = k + 1;
        } else if (params[k] == '(' || params[k] == '[') {
          ++depth;
        } else if (params[k] == ')' || params[k] == ']') {
          --depth;
        }
      }
      for (const std::string& p : parts) {
        if (p.find('&') != std::string::npos ||
            p.find('*') != std::string::npos) {
          continue;
        }
        if (has_any_token(p, {"vector", "map", "set", "deque", "string",
                              "function", "unordered_map", "unordered_set",
                              "multimap", "multiset"})) {
          report(out, f, fn.line, "hot-path-copy",
                 "parameter `" + p + "` of SIRIUS_HOT-reachable `" + fn.name +
                     "` passes an indexed container by value: take it by "
                     "const reference so the slot kernel never deep-copies");
        }
      }
    }
  }
}

// ---- layering rules --------------------------------------------------------

/// The declared layer matrix (docs/ARCHITECTURE.md). An include is legal
/// iff it stays in its own directory or targets a strictly lower rank.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},    {"check", 1},    {"optical", 2},  {"fec", 2},
      {"frame", 2},     {"powercost", 2}, {"workload", 2}, {"sync", 2},
      {"telemetry", 2}, {"ckpt", 2},     {"topo", 3},     {"phy", 3},
      {"stats", 3},     {"cc", 3},       {"node", 4},     {"sched", 4},
      {"ctrl", 4},      {"sim", 5},      {"esn", 6},      {"core", 7}};
  return kRanks;
}

/// First `src/<layer>` component of an effective path, "" when not under a
/// known layer.
std::string layer_of(const std::string& p) {
  const fs::path norm = fs::path(p).lexically_normal();
  for (auto it = norm.begin(); it != norm.end(); ++it) {
    if (*it != "src") continue;
    const auto next = std::next(it);
    if (next == norm.end()) return "";
    const std::string layer = next->string();
    return layer_ranks().count(layer) != 0 ? layer : "";
  }
  return "";
}

void rule_layer_order(const std::vector<FileIndex>& files,
                      std::vector<Violation>& out) {
  const auto& ranks = layer_ranks();
  for (const FileIndex& f : files) {
    const std::string src_layer = layer_of(f.effective_path);
    if (src_layer.empty()) continue;
    const int src_rank = ranks.at(src_layer);
    for (const IncludeEdge& inc : f.includes) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // sibling include
      const std::string tgt_layer = inc.target.substr(0, slash);
      const auto rit = ranks.find(tgt_layer);
      if (rit == ranks.end()) continue;
      if (tgt_layer == src_layer || rit->second < src_rank) continue;
      report(out, f, inc.line, "layer-order",
             "#include \"" + inc.target + "\" makes layer `" + src_layer +
                 "` (rank " + std::to_string(src_rank) +
                 ") depend upward on `" + tgt_layer + "` (rank " +
                 std::to_string(rit->second) +
                 "): the declared matrix only allows downward includes; "
                 "invert the dependency or move the shared type down");
    }
  }
}

void rule_include_cycle(const std::vector<FileIndex>& files,
                        std::vector<Violation>& out) {
  const std::size_t n = files.size();
  const auto edges = resolve_includes(files, /*keep_self=*/true);
  // Iterative DFS; an edge into a grey node closes a cycle.
  std::vector<int> color(n, 0);  // 0 white, 1 grey, 2 black
  struct Frame {
    std::size_t node;
    std::size_t next;
  };
  for (std::size_t r = 0; r < n; ++r) {
    if (color[r] != 0) continue;
    std::vector<Frame> st{Frame{r, 0}};
    color[r] = 1;
    while (!st.empty()) {
      const std::size_t node = st.back().node;
      if (st.back().next >= edges[node].size()) {
        color[node] = 2;
        st.pop_back();
        continue;
      }
      const ResolvedInclude e = edges[node][st.back().next++];
      if (color[e.target] == 1) {
        report(out, files[node], e.line, "include-cycle",
               "#include here closes an include cycle back through `" +
                   files[e.target].path +
                   "`: break the cycle with a forward declaration or by "
                   "moving the shared type down a layer");
      } else if (color[e.target] == 0) {
        color[e.target] = 1;
        st.push_back(Frame{e.target, 0});
      }
    }
  }
}

void rule_duplicate_include(const std::vector<FileIndex>& files,
                            std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    std::map<std::string, int> first;
    for (const IncludeEdge& inc : f.includes) {
      const auto [it, fresh] = first.emplace(inc.target, inc.line);
      if (fresh) continue;
      report(out, f, inc.line, "duplicate-include",
             "duplicate #include \"" + inc.target + "\" (first at line " +
                 std::to_string(it->second) + ")");
    }
  }
}

void rule_dead_public_symbol(const std::vector<FileIndex>& files,
                             std::vector<Violation>& out) {
  // declared[name] = decl + definition-head records; seen[name] = token
  // occurrences across every scrubbed line. A symbol with no occurrence
  // beyond its own declarations has no call site in the scanned set.
  std::map<std::string, long> declared;
  for (const FileIndex& f : files) {
    for (const MethodDecl& d : f.decls) ++declared[d.name];
    for (const FunctionDef& fn : f.fns) ++declared[fn.name];
  }
  std::map<std::string, long> seen;
  static const std::regex ident_re(R"([A-Za-z_][A-Za-z0-9_]*)");
  for (const FileIndex& f : files) {
    for (const std::string& line : f.lines) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), ident_re);
           it != std::sregex_iterator(); ++it) {
        const std::string tok = it->str();
        const auto dit = declared.find(tok);
        if (dit != declared.end()) ++seen[tok];
      }
    }
  }
  for (const FileIndex& f : files) {
    if (!f.kind.is_header || !under_src(f.effective_path, {})) continue;
    for (const MethodDecl& d : f.decls) {
      if (d.name.empty() || d.name == d.klass) continue;  // ctor/dtor
      if (seen[d.name] <= declared[d.name]) {
        report(out, f, d.line, "dead-public-symbol",
               "public symbol `" +
                   (d.klass.empty() ? d.name : d.klass + "::" + d.name) +
                   "` has no call site in the scanned tree: remove it or "
                   "keep it deliberately with allow(dead-public-symbol)");
      }
    }
  }
}

// ---- allowlist sync --------------------------------------------------------

struct AllowEntry {
  std::string path;
  std::string rule;
  int line = 0;
};

void rule_allowlist_sync(const std::vector<FileIndex>& files,
                         const std::string& allowlist_path,
                         std::vector<Violation>& out) {
  std::ifstream in(allowlist_path, std::ios::binary);
  if (!in) {
    out.push_back(Violation{allowlist_path, 0, "allowlist-sync",
                            "cannot read allowlist file"});
    return;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  // Entry lines look like:  - `src/foo/bar.cpp` — rule-id: justification
  // (the separator may be an em dash or a double hyphen).
  static const std::regex entry_re(
      R"(^-\s*`([^`]+)`\s*(?:—|--)\s*([A-Za-z0-9-]+):\s*\S)");
  static const std::regex bullet_re(R"(^-\s*`)");
  std::vector<AllowEntry> entries;
  const auto lines = split_lines(ss.str());
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::smatch m;
    if (std::regex_search(lines[li], m, entry_re)) {
      entries.push_back(
          AllowEntry{m[1].str(), m[2].str(), static_cast<int>(li) + 1});
    } else if (std::regex_search(lines[li], bullet_re)) {
      out.push_back(Violation{
          allowlist_path, static_cast<int>(li) + 1, "allowlist-sync",
          "malformed allowlist entry: expected `- `path` — rule: "
          "justification`"});
    }
  }

  // Sites, deduplicated to (file, rule); remember the first line for the
  // report.
  std::map<std::pair<std::string, std::string>, int> sites;
  for (const FileIndex& f : files) {
    for (const AllowSite& a : f.allows) {
      const auto key = std::make_pair(f.path, a.rule);
      if (sites.find(key) == sites.end()) sites[key] = a.line;
    }
  }

  std::vector<char> entry_used(entries.size(), 0);
  for (const auto& [key, line] : sites) {
    const auto& [file, rule] = key;
    bool covered = false;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e].rule == rule && path_ends_with(file, entries[e].path)) {
        entry_used[e] = 1;
        covered = true;
      }
    }
    if (!covered) {
      out.push_back(Violation{
          file, line, "allowlist-sync",
          "suppression allow(" + rule + ") is not recorded in " +
              allowlist_path +
              ": add `- `<path>` — " + rule +
              ": <justification>`"});
    }
  }
  for (std::size_t e = 0; e < entries.size(); ++e) {
    if (!entry_used[e]) {
      out.push_back(Violation{
          allowlist_path, entries[e].line, "allowlist-sync",
          "stale allowlist entry: no allow(" + entries[e].rule +
              ") suppression found in `" + entries[e].path +
              "` among the scanned files"});
    }
  }
}

}  // namespace

// ---- public entry points ---------------------------------------------------

FileIndex index_text(const std::string& text, const std::string& reported_path,
                     const std::string& effective_path, const FileKind& kind) {
  return Scanner(text, reported_path, effective_path, kind).run();
}

std::vector<Violation> evaluate_tree(const std::vector<FileIndex>& files,
                                     const std::string& allowlist_path,
                                     const EvalOptions& opts) {
  std::vector<Violation> out;
  rule_mutable_global(files, out);
  rule_unordered_sim_state(files, out);
  rule_pointer_key_order(files, out);
  rule_shared_mutable_ref(files, out);
  rule_float_reduction(files, out);
  rule_telemetry_escape(files, out);
  const HotClosure hc = build_hot_closure(files);
  rule_hot_path_alloc(files, hc, out);
  rule_hot_path_virtual(files, hc, out);
  rule_hot_path_throw(files, hc, out);
  rule_hot_path_copy(files, hc, out);
  rule_layer_order(files, out);
  rule_include_cycle(files, out);
  rule_duplicate_include(files, out);
  if (opts.dead_symbols) {
    rule_dead_public_symbol(files, out);
  }
  if (!allowlist_path.empty()) {
    rule_allowlist_sync(files, allowlist_path, out);
  }
  return out;
}

}  // namespace sirius::lint
