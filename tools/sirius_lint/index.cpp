// Pass 1 (structural scanner) and pass 2 (cross-file rules) of the
// shard-safety analyzer. See index.hpp for the architecture overview and
// docs/STATIC_ANALYSIS.md for the rule table.
//
// The scanner walks the scrubbed code view character by character keeping a
// scope stack. Each brace scope gets its own statement accumulator, so an
// inner scope (a brace initialiser, a lambda body inside a call argument)
// never corrupts the statement being collected in the scope around it.
// Brace-initialiser scopes are "transparent": popping them leaves the outer
// accumulator intact, so `std::atomic<Mode> g_mode{kAbort};` is seen as one
// statement `std::atomic<Mode> g_mode` when the `;` finally arrives.
#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace sirius::lint {
namespace {

// ---- small text helpers ----------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

/// Identifier tokens of `s`, in order.
std::vector<std::string> ident_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (ident_char(s[i]) && !std::isdigit(static_cast<unsigned char>(s[i]))) {
      std::size_t j = i;
      while (j < s.size() && ident_char(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
    } else if (ident_char(s[i])) {
      // number (possibly with suffix letters): skip as one unit
      std::size_t j = i;
      while (j < s.size() && (ident_char(s[j]) || s[j] == '.')) ++j;
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

bool has_token(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool has_any_token(const std::string& s,
                   std::initializer_list<const char*> toks) {
  for (const char* t : toks) {
    if (has_token(s, t)) return true;
  }
  return false;
}

/// Strips SIRIUS_* thread-safety macros and alignas(...) from a statement
/// (with or without an argument list), so declarations classify the same
/// annotated and bare. Sets *guarded when a (PT_)GUARDED_BY was present.
std::string strip_attr_macros(const std::string& s, bool* guarded) {
  static const std::regex with_args(
      R"((\bSIRIUS_[A-Z_]+|\balignas)\s*\(([^()]|\([^()]*\))*\))");
  static const std::regex bare(R"(\bSIRIUS_[A-Z_]+\b)");
  if (guarded) {
    static const std::regex g(R"(\bSIRIUS_(PT_)?GUARDED_BY\s*\()");
    *guarded = std::regex_search(s, g);
  }
  return std::regex_replace(std::regex_replace(s, with_args, " "), bare, " ");
}

/// Finds the first "top-level" occurrence of `want` in `s`: outside (), [],
/// and a best-effort reading of template <>. Returns npos when absent.
/// `want` must be a single char; ':' means a lone colon (not '::').
std::size_t find_top_level(const std::string& s, char want) {
  int paren = 0, bracket = 0, angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char prev = i > 0 ? s[i - 1] : '\0';
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    // The match test runs before the depth update, so an opening bracket
    // can itself be found at top level.
    if (c == want && paren == 0 && bracket == 0 && angle == 0) {
      const bool colon_part_of_scope =
          want == ':' && (prev == ':' || next == ':');
      const bool eq_part_of_operator =
          want == '=' &&
          (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
           prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
           prev == '|' || prev == '&' || prev == '^' || prev == '%' ||
           next == '=');
      if (!colon_part_of_scope && !eq_part_of_operator) return i;
    }
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      paren = std::max(0, paren - 1);
    } else if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      bracket = std::max(0, bracket - 1);
    } else if (c == '<' && next != '<' && next != '=' && prev != '<') {
      // Angle opens only after an identifier/:: tail (template-arg-ish).
      std::size_t p = s.find_last_not_of(" \t", i == 0 ? 0 : i - 1);
      if (i > 0 && p != std::string::npos &&
          (ident_char(s[p]) || s[p] == ':' || s[p] == '>')) {
        ++angle;
      }
    } else if (c == '>' && angle > 0 && prev != '-') {
      --angle;
    }
  }
  return std::string::npos;
}

/// Removes every [...] group (array extents) — non-nesting is fine here.
std::string strip_brackets(const std::string& s) {
  static const std::regex re(R"(\[[^\][]*\])");
  return std::regex_replace(s, re, "");
}

/// Removes the contents of template argument lists, keeping the <>, so
/// `std::function<void(Foo&)>` stops looking like it has a ref/paren.
std::string strip_angle_contents(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char prev = i > 0 ? s[i - 1] : '\0';
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '<' && next != '<' && prev != '<' && i > 0 &&
        (ident_char(prev) || prev == ':' || prev == '>')) {
      if (angle == 0) out += '<';
      ++angle;
      continue;
    }
    if (c == '>' && angle > 0 && prev != '-') {
      --angle;
      if (angle == 0) out += '>';
      continue;
    }
    if (angle == 0) out += c;
  }
  return out;
}

/// Declaration name: last identifier token of the declarator part (array
/// extents stripped). Empty when the text has fewer than two identifier
/// tokens (not a type+name declaration).
std::string decl_name(const std::string& decl) {
  const auto toks = ident_tokens(strip_brackets(decl));
  return toks.size() >= 2 ? toks.back() : std::string();
}

// ---- the structural scanner ------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kEnum, kFunction, kLoop, kBlock, kInit };
  Kind kind = kBlock;
  std::string name;     // class name / function name
  bool is_ctor = false; // Function scopes only
};

struct Pending {
  std::string text;
  int first_line = -1;  // 0-based line of the first non-space char
  int paren_depth = 0;
};

class Scanner {
 public:
  Scanner(const std::string& text, const std::string& reported_path,
          const std::string& effective_path, const FileKind& kind) {
    idx_.path = reported_path;
    idx_.effective_path = effective_path;
    idx_.kind = kind;
    idx_.lines = split_lines(scrub(text, &idx_.comments));
    const std::size_t n = idx_.lines.size();
    idx_.loop_depth.assign(n, 0);
    idx_.enclosing_fn.assign(n, "");
    idx_.in_ctor.assign(n, false);
    collect_includes(text);
    collect_allows();
  }

  FileIndex run() {
    pendings_.push_back(Pending{});
    bool in_preprocessor = false;  // inside a #directive (incl. \-continued)
    for (std::size_t li = 0; li < idx_.lines.size(); ++li) {
      line_ = static_cast<int>(li);
      record_line_state(li);
      const std::string& ln = idx_.lines[li];
      const auto first = ln.find_first_not_of(" \t");
      if (in_preprocessor ||
          (first != std::string::npos && ln[first] == '#')) {
        // Preprocessor logical lines (a #define body is not code in scope).
        const std::string t = rtrim(ln);
        in_preprocessor = !t.empty() && t.back() == '\\';
        continue;
      }
      scan_line(ln);
    }
    // An unterminated trailing statement (no final ';') is dropped — the
    // scanner prefers missing a declaration over misreading one.
    return std::move(idx_);
  }

 private:
  void collect_includes(const std::string& raw) {
    static const std::regex re(R"re(^\s*#\s*include\s*"([^"]+)")re");
    for (const std::string& ln : split_lines(raw)) {
      std::smatch m;
      if (std::regex_search(ln, m, re)) idx_.includes.push_back(m[1].str());
    }
  }

  void collect_allows() {
    static const std::regex re(R"(sirius-lint:\s*allow\(([^)]*)\))");
    for (std::size_t li = 0; li < idx_.comments.size(); ++li) {
      const std::string& c = idx_.comments[li];
      for (auto it = std::sregex_iterator(c.begin(), c.end(), re);
           it != std::sregex_iterator(); ++it) {
        std::istringstream ss((*it)[1].str());
        std::string item;
        while (std::getline(ss, item, ',')) {
          const std::string rule = trim(item);
          if (!rule.empty()) {
            idx_.allows.push_back(
                AllowSite{static_cast<int>(li) + 1, rule});
          }
        }
      }
    }
  }

  int loop_count() const {
    int n = 0;
    for (const Scope& s : scopes_) n += s.kind == Scope::kLoop ? 1 : 0;
    return n;
  }

  const Scope* innermost_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &*it;
    }
    return nullptr;
  }

  /// The scope that gives a `;`-terminated statement its meaning: the
  /// innermost function, class, or namespace (Init/Loop/Block/Enum are
  /// transparent). Returns nullptr at file scope.
  const Scope* decl_context() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kClass ||
          it->kind == Scope::kNamespace || it->kind == Scope::kEnum) {
        return &*it;
      }
    }
    return nullptr;
  }

  void record_line_state(std::size_t li) {
    idx_.loop_depth[li] = std::max(idx_.loop_depth[li], loop_count());
    if (const Scope* fn = innermost_fn()) {
      idx_.enclosing_fn[li] = fn->name;
      idx_.in_ctor[li] = idx_.in_ctor[li] || fn->is_ctor;
    }
  }

  void scan_line(const std::string& ln) {
    for (std::size_t i = 0; i < ln.size(); ++i) {
      const char c = ln[i];
      Pending& p = pendings_.back();
      if (c == '{') {
        push_scope();
      } else if (c == '}') {
        pop_scope();
      } else if (c == ';' && p.paren_depth == 0) {
        handle_statement();
      } else {
        if (c == '(') ++p.paren_depth;
        if (c == ')') p.paren_depth = std::max(0, p.paren_depth - 1);
        append(c);
        if (c == ':') maybe_clear_access_specifier();
      }
    }
    append(' ');
  }

  void append(char c) {
    Pending& p = pendings_.back();
    if (c == ' ' || c == '\t') {
      if (!p.text.empty() && p.text.back() != ' ') p.text += ' ';
      return;
    }
    if (p.first_line < 0) p.first_line = line_;
    p.text += c;
  }

  void maybe_clear_access_specifier() {
    Pending& p = pendings_.back();
    const std::string t = trim(p.text);
    if (t == "public:" || t == "private:" || t == "protected:") {
      p.text.clear();
      p.first_line = -1;
    }
  }

  void push_scope() {
    Pending& p = pendings_.back();
    scopes_.push_back(classify_brace(trim(p.text)));
    if (scopes_.back().kind == Scope::kLoop ||
        scopes_.back().kind == Scope::kFunction) {
      // A loop / function opening on this line affects the rest of it.
      record_line_state(static_cast<std::size_t>(line_));
    }
    pendings_.push_back(Pending{});
  }

  void pop_scope() {
    if (scopes_.empty()) return;  // unbalanced (e.g. a macro'd brace): bail
    const Scope popped = scopes_.back();
    scopes_.pop_back();
    pendings_.pop_back();
    if (popped.kind != Scope::kInit) {
      // A real scope ended: whatever introduced it is consumed.
      pendings_.back().text.clear();
      pendings_.back().first_line = -1;
    }
  }

  /// Decides what kind of scope a `{` opens, from the statement text
  /// accumulated since the last boundary. Mirrors the decision table in
  /// docs/STATIC_ANALYSIS.md; unknown shapes become transparent kInit so a
  /// misread never swallows surrounding declarations.
  Scope classify_brace(const std::string& raw_pending) const {
    Scope s;
    if (pendings_.back().paren_depth > 0) {
      // `{` inside an argument list: a lambda body (capture list present)
      // or an initialiser-list argument. Both leave the outer statement
      // alone; a lambda additionally becomes the enclosing function.
      if (raw_pending.find('[') != std::string::npos) {
        s.kind = Scope::kFunction;
        s.name = "<lambda>";
      } else {
        s.kind = Scope::kInit;
      }
      return s;
    }
    const std::string pending = trim(strip_attr_macros(raw_pending, nullptr));
    if (pending.empty()) {
      s.kind = Scope::kBlock;
      return s;
    }
    const auto toks = ident_tokens(pending);
    if (toks.empty()) {
      s.kind = Scope::kInit;  // pure-symbol pending: an initialiser shape
      return s;
    }
    if (has_token(pending, "enum")) {
      s.kind = Scope::kEnum;
      return s;
    }
    if (has_token(pending, "namespace") || toks.front() == "extern") {
      s.kind = Scope::kNamespace;
      return s;
    }
    const std::size_t eq = find_top_level(pending, '=');
    const std::size_t paren = find_top_level(pending, '(');
    if ((has_token(pending, "class") || has_token(pending, "struct") ||
         has_token(pending, "union")) &&
        paren == std::string::npos && eq == std::string::npos) {
      s.kind = Scope::kClass;
      // name: identifier right after the keyword
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i] == "class" || toks[i] == "struct" || toks[i] == "union") {
          s.name = toks[i + 1];
          break;
        }
      }
      return s;
    }
    if (toks.front() == "for" || toks.front() == "while" ||
        toks.front() == "do") {
      s.kind = Scope::kLoop;
      return s;
    }
    if (toks.front() == "if" || toks.front() == "switch" ||
        toks.front() == "else" || toks.front() == "try" ||
        toks.front() == "catch") {
      s.kind = Scope::kBlock;
      return s;
    }
    if (eq != std::string::npos) {
      // `x = [captures](args)` opens a lambda body; any other initialiser
      // brace is transparent.
      if (pending.find('[', eq) != std::string::npos) {
        s.kind = Scope::kFunction;
        s.name = "<lambda>";
      } else {
        s.kind = Scope::kInit;
      }
      return s;
    }
    if (paren != std::string::npos) {
      s.kind = Scope::kFunction;
      // name: identifier immediately before the first top-level '('
      const std::string head = trim(pending.substr(0, paren));
      const auto head_toks = ident_tokens(head);
      if (!head_toks.empty()) s.name = head_toks.back();
      if (!s.name.empty()) {
        // ctor: `X::X(` or a function named like its enclosing class
        const std::string qual = s.name + "::" + s.name;
        if (head.size() >= qual.size() &&
            head.compare(head.size() - qual.size(), qual.size(), qual) == 0) {
          s.is_ctor = true;
        } else if (const Scope* ctx = decl_context();
                   ctx && ctx->kind == Scope::kClass && ctx->name == s.name) {
          s.is_ctor = true;
        }
      }
      return s;
    }
    s.kind = Scope::kInit;  // `Type name{...}` and anything unrecognised
    return s;
  }

  void handle_statement() {
    Pending& p = pendings_.back();
    const std::string stmt = trim(p.text);
    const int stmt_line = p.first_line < 0 ? line_ : p.first_line;
    p.text.clear();
    p.first_line = -1;
    if (stmt.empty()) return;
    const Scope* ctx = decl_context();
    if (ctx && ctx->kind == Scope::kFunction) {
      handle_local(stmt, stmt_line);
    } else if (ctx && ctx->kind == Scope::kClass) {
      handle_field(stmt, stmt_line, ctx->name);
    } else if (!ctx || ctx->kind == Scope::kNamespace) {
      handle_global(stmt, stmt_line);
    }
    // kEnum: enumerators, nothing to extract.
  }

  void note_float_decl(const std::string& decl) {
    if (has_token(decl, "double") || has_token(decl, "float")) {
      const std::string name = decl_name(decl);
      if (!name.empty()) idx_.float_names.push_back(name);
    }
  }

  /// Statement directly in a namespace / at file scope.
  void handle_global(const std::string& raw, int line0) {
    bool guarded = false;
    const std::string stmt = trim(strip_attr_macros(raw, &guarded));
    if (stmt.empty()) return;
    const auto toks = ident_tokens(stmt);
    if (toks.size() < 2) return;
    if (has_any_token(stmt, {"using", "typedef", "extern", "friend",
                             "template", "static_assert", "operator",
                             "namespace", "struct", "class", "enum", "union",
                             "concept", "requires"})) {
      return;
    }
    if (has_any_token(stmt, {"const", "constexpr"})) return;
    const std::size_t eq = find_top_level(stmt, '=');
    const std::string decl =
        eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    if (find_top_level(decl, '(') != std::string::npos) return;  // fn decl
    const std::string name = decl_name(decl);
    if (name.empty()) return;
    GlobalVar g;
    g.name = name;
    g.line = line0 + 1;
    g.function_local = false;
    g.is_thread_local = has_token(stmt, "thread_local");
    g.type_text = decl;
    idx_.globals.push_back(g);
    note_float_decl(decl);
  }

  /// Statement directly in a class body: member declarations.
  void handle_field(const std::string& raw, int line0,
                    const std::string& klass) {
    bool guarded = false;
    const std::string stmt = trim(strip_attr_macros(raw, &guarded));
    if (stmt.empty()) return;
    if (has_any_token(stmt, {"using", "typedef", "friend", "template",
                             "static_assert", "operator", "public",
                             "private", "protected"})) {
      return;
    }
    const auto toks = ident_tokens(stmt);
    if (toks.size() < 2) return;
    if (toks.front() == "struct" || toks.front() == "class" ||
        toks.front() == "enum" || toks.front() == "union") {
      return;  // nested forward declaration
    }
    if (has_token(stmt, "static")) {
      // static data member: mutable class-wide state
      if (has_any_token(stmt, {"const", "constexpr"})) return;
      const std::size_t eq = find_top_level(stmt, '=');
      std::string decl = eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
      if (find_top_level(decl, '(') != std::string::npos) return;
      const std::string name = decl_name(decl);
      if (name.empty()) return;
      GlobalVar g;
      g.name = klass.empty() ? name : klass + "::" + name;
      g.line = line0 + 1;
      g.type_text = decl;
      idx_.globals.push_back(g);
      return;
    }
    std::size_t eq = find_top_level(stmt, '=');
    std::string decl = eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    if (find_top_level(decl, '(') != std::string::npos) return;  // method
    const std::size_t colon = find_top_level(decl, ':');
    if (colon != std::string::npos) decl = trim(decl.substr(0, colon));  // bitfield
    const std::string name = decl_name(decl);
    if (name.empty()) return;
    Field f;
    f.klass = klass;
    f.name = name;
    f.line = line0 + 1;
    f.annotated = guarded;
    const std::size_t at = decl.rfind(name);
    f.type_text = trim(at == std::string::npos ? decl : decl.substr(0, at));
    idx_.fields.push_back(f);
    note_float_decl(decl);
  }

  /// Statement inside a function body: function-local statics + float names.
  void handle_local(const std::string& raw, int line0) {
    const std::string stmt = trim(strip_attr_macros(raw, nullptr));
    if (stmt.empty()) return;
    const auto toks = ident_tokens(stmt);
    if (toks.empty()) return;
    static const std::set<std::string> kStmtKeywords = {
        "return", "if",    "for",   "while", "do",   "else",
        "switch", "case",  "break", "continue", "goto", "delete",
        "throw",  "using", "typedef"};
    if (kStmtKeywords.count(toks.front()) != 0) return;
    const std::size_t eq = find_top_level(stmt, '=');
    const std::string decl =
        eq == std::string::npos ? stmt : trim(stmt.substr(0, eq));
    if (has_token(stmt, "static") || has_token(stmt, "thread_local")) {
      if (!has_any_token(stmt, {"const", "constexpr"}) &&
          find_top_level(decl, '(') == std::string::npos) {
        const std::string name = decl_name(decl);
        if (!name.empty()) {
          GlobalVar g;
          g.name = name;
          g.line = line0 + 1;
          g.function_local = true;
          g.is_thread_local = has_token(stmt, "thread_local");
          g.type_text = decl;
          idx_.globals.push_back(g);
        }
      }
    }
    if (find_top_level(decl, '(') == std::string::npos) note_float_decl(decl);
  }

  FileIndex idx_;
  std::vector<Scope> scopes_;
  std::vector<Pending> pendings_;
  int line_ = 0;
};

// ---- pass-2 helpers --------------------------------------------------------

/// True when `p` (the effective path) contains the components `src/<sub>`
/// for any listed sub, or just `src` when subs is empty.
bool under_src(const std::string& p, std::initializer_list<const char*> subs) {
  const fs::path norm = fs::path(p).lexically_normal();
  auto it = norm.begin();
  for (; it != norm.end(); ++it) {
    if (*it == "src") {
      if (subs.size() == 0) return true;
      auto next = std::next(it);
      if (next == norm.end()) return false;
      for (const char* s : subs) {
        if (*next == s) return true;
      }
      return false;
    }
  }
  return false;
}

/// True when path `full` ends with the components of `suffix`.
bool path_ends_with(const std::string& full, const std::string& suffix) {
  const fs::path f = fs::path(full).lexically_normal();
  const fs::path s = fs::path(suffix).lexically_normal();
  std::vector<std::string> fc, sc;
  for (const auto& c : f) fc.push_back(c.string());
  for (const auto& c : s) sc.push_back(c.string());
  if (sc.empty() || sc.size() > fc.size()) return false;
  return std::equal(sc.rbegin(), sc.rend(), fc.rbegin());
}

void report(std::vector<Violation>& out, const FileIndex& f, int line,
            const char* rule, const std::string& msg) {
  if (suppressed(f.comments, line - 1, rule)) return;
  out.push_back(Violation{f.path, line, rule, msg});
}

// ---- pass-2 rules ----------------------------------------------------------

void rule_mutable_global(const std::vector<FileIndex>& files,
                         std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (const GlobalVar& g : f.globals) {
      std::ostringstream msg;
      if (g.function_local) {
        msg << "function-local " << (g.is_thread_local ? "thread_local" : "static")
            << " `" << g.name << "`";
      } else {
        msg << "mutable " << (g.is_thread_local ? "thread_local" : "namespace-scope")
            << " state `" << g.name << "`";
      }
      msg << " in library code: sharded slot execution cannot share it; "
             "move it into an owning object, or allow() with a written "
             "justification and an ALLOWLIST.md entry";
      report(out, f, g.line, "no-mutable-global-state", msg.str());
    }
  }
}

void rule_unordered_sim_state(const std::vector<FileIndex>& files,
                              std::vector<Violation>& out) {
  // Sim-reachable = transitive closure of quoted-include edges starting
  // from files under src/sim. Include targets resolve against both the
  // real and the effective path of every scanned file (suffix match on
  // path components, then bare basename).
  const std::size_t n = files.size();
  std::vector<std::vector<std::size_t>> edges(n);
  std::map<std::string, std::vector<std::size_t>> by_basename;
  for (std::size_t i = 0; i < n; ++i) {
    by_basename[fs::path(files[i].path).filename().string()].push_back(i);
    by_basename[fs::path(files[i].effective_path).filename().string()]
        .push_back(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& inc : files[i].includes) {
      const std::string base = fs::path(inc).filename().string();
      const auto it = by_basename.find(base);
      if (it == by_basename.end()) continue;
      for (std::size_t j : it->second) {
        if (j == i) continue;
        if (path_ends_with(files[j].path, inc) ||
            path_ends_with(files[j].effective_path, inc) ||
            it->second.size() == 1 ||
            fs::path(inc).filename() == inc) {
          edges[i].push_back(j);
        }
      }
    }
  }
  std::vector<char> reach(n, 0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (under_src(files[i].effective_path, {"sim"})) {
      reach[i] = 1;
      stack.push_back(i);
    }
  }
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    for (std::size_t j : edges[i]) {
      if (!reach[j]) {
        reach[j] = 1;
        stack.push_back(j);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!reach[i] || !files[i].kind.is_src) continue;
    for (const Field& fld : files[i].fields) {
      if (has_any_token(fld.type_text,
                        {"unordered_map", "unordered_set",
                         "unordered_multimap", "unordered_multiset"})) {
        report(out, files[i], fld.line, "no-unordered-sim-state",
               "field `" + fld.name + "` of sim-reachable type `" +
                   fld.klass +
                   "` uses std::unordered_*: hash iteration order would "
                   "leak into the deterministic merge; use std::map/set or "
                   "an index-keyed vector");
      }
    }
  }
}

void rule_pointer_key_order(const std::vector<FileIndex>& files,
                            std::vector<Violation>& out) {
  static const std::regex re(
      R"(std\s*::\s*(?:multi)?(?:map|set)\s*<\s*[^<>,;=]*\*|std\s*::\s*(?:less|greater)\s*<[^<>,;]*\*\s*>)");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (std::regex_search(f.lines[li], re)) {
        report(out, f, static_cast<int>(li) + 1, "no-pointer-key-order",
               "ordered container or comparator keyed on a pointer value: "
               "addresses differ run to run, so iteration order is not "
               "reproducible; key on a stable id instead");
      }
    }
  }
}

void rule_shared_mutable_ref(const std::vector<FileIndex>& files,
                             std::vector<Violation>& out) {
  for (const FileIndex& f : files) {
    if (!under_src(f.effective_path, {"sim", "node", "cc", "sched"})) continue;
    for (const Field& fld : f.fields) {
      if (fld.annotated) continue;
      const std::string t = strip_angle_contents(fld.type_text);
      if (t.find('*') == std::string::npos &&
          t.find('&') == std::string::npos) {
        continue;
      }
      if (has_token(t, "const")) continue;
      report(out, f, fld.line, "no-shared-mutable-ref",
             "member `" + fld.name + "` of `" + fld.klass +
                 "` aliases mutable state across a future shard boundary "
                 "(non-const pointer/reference): annotate it with "
                 "SIRIUS_GUARDED_BY(<role>) to declare the sharing, or "
                 "allow() with a justification");
    }
  }
}

void rule_float_reduction(const std::vector<FileIndex>& files,
                          std::vector<Violation>& out) {
  static const std::regex re(R"(\b([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)?\+=)");
  for (const FileIndex& f : files) {
    if (!under_src(f.effective_path, {"stats", "esn"})) continue;
    if (!f.kind.is_src) continue;
    const std::set<std::string> floats(f.float_names.begin(),
                                       f.float_names.end());
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (f.loop_depth[li] == 0) continue;
      const std::string& ln = f.lines[li];
      for (auto it = std::sregex_iterator(ln.begin(), ln.end(), re);
           it != std::sregex_iterator(); ++it) {
        if (floats.count((*it)[1].str()) != 0) {
          report(out, f, static_cast<int>(li) + 1, "float-reduction-order",
                 "floating-point accumulation `" + (*it)[1].str() +
                     " +=` in a loop: the reduction order becomes part of "
                     "the result; document why the iteration order is "
                     "deterministic via allow(float-reduction-order)");
          break;
        }
      }
    }
  }
}

void rule_telemetry_escape(const std::vector<FileIndex>& files,
                           std::vector<Violation>& out) {
  static const std::regex re(
      R"((?:\.|->)\s*metrics\s*\(\s*\)|\bHub\s*::\s*instance\b)");
  for (const FileIndex& f : files) {
    if (!f.kind.is_src || under_src(f.effective_path, {"telemetry"})) continue;
    for (std::size_t li = 0; li < f.lines.size(); ++li) {
      if (!std::regex_search(f.lines[li], re)) continue;
      const std::string& fn = f.enclosing_fn[li];
      if (f.in_ctor[li] || fn.find("bind_metrics") != std::string::npos) {
        continue;  // the bound-at-init pattern
      }
      report(out, f, static_cast<int>(li) + 1, "singleton-telemetry-escape",
             "telemetry Hub registry access outside a constructor or "
             "bind_metrics(): bind instrument pointers once at init and "
             "use those on the hot path, so shards never race on the "
             "registry");
    }
  }
}

// ---- allowlist sync --------------------------------------------------------

struct AllowEntry {
  std::string path;
  std::string rule;
  int line = 0;
};

void rule_allowlist_sync(const std::vector<FileIndex>& files,
                         const std::string& allowlist_path,
                         std::vector<Violation>& out) {
  std::ifstream in(allowlist_path, std::ios::binary);
  if (!in) {
    out.push_back(Violation{allowlist_path, 0, "allowlist-sync",
                            "cannot read allowlist file"});
    return;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  // Entry lines look like:  - `src/foo/bar.cpp` — rule-id: justification
  // (the separator may be an em dash or a double hyphen).
  static const std::regex entry_re(
      R"(^-\s*`([^`]+)`\s*(?:—|--)\s*([A-Za-z0-9-]+):\s*\S)");
  static const std::regex bullet_re(R"(^-\s*`)");
  std::vector<AllowEntry> entries;
  const auto lines = split_lines(ss.str());
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::smatch m;
    if (std::regex_search(lines[li], m, entry_re)) {
      entries.push_back(
          AllowEntry{m[1].str(), m[2].str(), static_cast<int>(li) + 1});
    } else if (std::regex_search(lines[li], bullet_re)) {
      out.push_back(Violation{
          allowlist_path, static_cast<int>(li) + 1, "allowlist-sync",
          "malformed allowlist entry: expected `- `path` — rule: "
          "justification`"});
    }
  }

  // Sites, deduplicated to (file, rule); remember the first line for the
  // report.
  std::map<std::pair<std::string, std::string>, int> sites;
  for (const FileIndex& f : files) {
    for (const AllowSite& a : f.allows) {
      const auto key = std::make_pair(f.path, a.rule);
      if (sites.find(key) == sites.end()) sites[key] = a.line;
    }
  }

  std::vector<char> entry_used(entries.size(), 0);
  for (const auto& [key, line] : sites) {
    const auto& [file, rule] = key;
    bool covered = false;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e].rule == rule && path_ends_with(file, entries[e].path)) {
        entry_used[e] = 1;
        covered = true;
      }
    }
    if (!covered) {
      out.push_back(Violation{
          file, line, "allowlist-sync",
          "suppression allow(" + rule + ") is not recorded in " +
              allowlist_path +
              ": add `- `<path>` — " + rule +
              ": <justification>`"});
    }
  }
  for (std::size_t e = 0; e < entries.size(); ++e) {
    if (!entry_used[e]) {
      out.push_back(Violation{
          allowlist_path, entries[e].line, "allowlist-sync",
          "stale allowlist entry: no allow(" + entries[e].rule +
              ") suppression found in `" + entries[e].path +
              "` among the scanned files"});
    }
  }
}

}  // namespace

// ---- public entry points ---------------------------------------------------

FileIndex index_text(const std::string& text, const std::string& reported_path,
                     const std::string& effective_path, const FileKind& kind) {
  return Scanner(text, reported_path, effective_path, kind).run();
}

std::vector<Violation> evaluate_tree(const std::vector<FileIndex>& files,
                                     const std::string& allowlist_path) {
  std::vector<Violation> out;
  rule_mutable_global(files, out);
  rule_unordered_sim_state(files, out);
  rule_pointer_key_order(files, out);
  rule_shared_mutable_ref(files, out);
  rule_float_reduction(files, out);
  rule_telemetry_escape(files, out);
  if (!allowlist_path.empty()) {
    rule_allowlist_sync(files, allowlist_path, out);
  }
  return out;
}

}  // namespace sirius::lint
