// Pass 1 of the two-pass shard-safety analyzer: per-file symbol extraction.
//
// sirius-lint grew beyond line-local regexes when the sharded slot-core work
// (ROADMAP item 2) needed rules about *state*, not tokens: mutable globals,
// container fields whose iteration order leaks into results, cross-component
// aliasing. Those need to know what a file *declares*, and one of them
// (no-unordered-sim-state) needs the include graph of the whole scanned set.
//
// So the linter now runs in two passes:
//
//   pass 1 (this header): every file is scrubbed (comments/strings blanked)
//     and walked by a lightweight structural scanner that tracks the scope
//     stack (namespace / class / function / loop / brace-init) well enough
//     to extract a FileIndex: namespace-scope and function-`static` mutable
//     variables, class fields with their declared type text, `#include`
//     edges, identifiers declared with floating-point type, per-line
//     enclosing-function names and loop depth, and every
//     `sirius-lint: allow(...)` suppression site.
//
//   pass 2 (evaluate_tree): the merged index is evaluated against the
//     cross-file shard-safety rules (see docs/STATIC_ANALYSIS.md for the
//     full table) — e.g. sim-reachability is the transitive closure of the
//     include edges from src/sim, and the allowlist cross-check compares
//     suppression sites against tools/sirius_lint/ALLOWLIST.md.
//
// The scanner is deliberately a heuristic, not a C++ parser: it is tuned to
// the tree's enforced style (clang-format, no macros that open scopes) and
// prefers false negatives over false positives. Anything it cannot classify
// is ignored.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "linter.hpp"

namespace sirius::lint {

/// One data member of a class/struct, as declared.
struct Field {
  std::string klass;      ///< enclosing class name ("" if anonymous)
  std::string type_text;  ///< declaration text left of the member name
  std::string name;
  int line = 0;  ///< 1-based
  /// Carries a SIRIUS_GUARDED_BY / SIRIUS_PT_GUARDED_BY thread-safety
  /// annotation (the no-shared-mutable-ref escape hatch: annotated sharing
  /// is declared sharing).
  bool annotated = false;
};

/// A mutable namespace-scope variable, static data member, or
/// function-local `static` — the state the sharded core must not meet.
struct GlobalVar {
  std::string name;
  int line = 0;                ///< 1-based
  bool function_local = false; ///< `static` inside a function body
  bool is_thread_local = false;
  std::string type_text;       ///< declaration text left of the name
};

/// One `sirius-lint: allow(<rule>)` comment occurrence.
struct AllowSite {
  int line = 0;  ///< 1-based
  std::string rule;
};

/// One quoted `#include "target"` directive.
struct IncludeEdge {
  std::string target;
  int line = 0;  ///< 1-based
};

/// A function definition head (free function, out-of-line method, or
/// in-class inline method). Keyed by unqualified name: the call graph in
/// pass 2 is deliberately name-conservative (same-named functions merge),
/// so hot-path reachability over-approximates rather than misses.
struct FunctionDef {
  std::string klass;  ///< enclosing class when defined in-class ("" else)
  std::string name;   ///< unqualified name
  int line = 0;       ///< 1-based line of the definition head
  bool hot = false;   ///< head carries SIRIUS_HOT
  std::string signature;  ///< head text, macros stripped (for the copy rule)
};

/// A `;`-terminated function/method declaration (class body or namespace
/// scope). Feeds hot-root marking, the virtual-dispatch rule, and the
/// dead-public-symbol report.
struct MethodDecl {
  std::string klass;  ///< "" for free-function declarations
  std::string name;
  int line = 0;  ///< 1-based
  bool hot = false;
  bool is_virtual = false;
  bool is_final = false;
  std::string signature;  ///< declaration text, macros stripped
};

/// A class/struct definition head.
struct ClassDecl {
  std::string name;
  int line = 0;          ///< 1-based
  bool is_final = false;
};

/// Everything pass 1 knows about one file.
struct FileIndex {
  std::string path;            ///< real path (reported in violations)
  std::string effective_path;  ///< classification path (--classify-as)
  FileKind kind;
  std::vector<IncludeEdge> includes;  ///< quoted #include targets
  std::vector<Field> fields;
  std::vector<GlobalVar> globals;
  std::vector<AllowSite> allows;
  std::vector<FunctionDef> fns;      ///< function definition heads
  std::vector<MethodDecl> decls;     ///< `;`-terminated fn/method decls
  std::vector<ClassDecl> classes;    ///< class/struct definition heads
  std::vector<std::string> float_names;  ///< declared double/float idents
  // Per-line structural context, 0-based, parallel to `lines`.
  std::vector<std::string> lines;         ///< scrubbed code lines
  std::vector<std::string> comments;      ///< comment text per line
  std::vector<int> loop_depth;            ///< enclosing for/while/do count
  std::vector<std::string> enclosing_fn;  ///< innermost function name, "" = none
  std::vector<bool> in_ctor;              ///< enclosing function is a ctor
};

/// Runs the pass-1 scanner over one file's contents. `reported_path` is what
/// violations cite; `effective_path` is what path-scoped rules see (differs
/// only under --classify-as).
FileIndex index_text(const std::string& text, const std::string& reported_path,
                     const std::string& effective_path, const FileKind& kind);

/// Optional pass-2 analyses (CLI flags).
struct EvalOptions {
  /// Emit the dead-public-symbol report (off by default: it is a review
  /// aid, not a gate — a symbol used only outside the scanned set would
  /// be a false positive in a partial scan).
  bool dead_symbols = false;
};

/// Pass 2: evaluates the cross-file shard-safety rules over the merged
/// index. `allowlist_path` enables the ALLOWLIST.md sync check when
/// non-empty. Suppression comments are honoured exactly like pass-1 rules.
std::vector<Violation> evaluate_tree(const std::vector<FileIndex>& files,
                                     const std::string& allowlist_path,
                                     const EvalOptions& opts = {});

}  // namespace sirius::lint
